package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/barrier"
	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/counter"
	"github.com/cds-suite/cds/deque"
	"github.com/cds-suite/cds/dual"
	"github.com/cds-suite/cds/fc"
	"github.com/cds-suite/cds/internal/epoch"
	"github.com/cds-suite/cds/internal/hazard"
	"github.com/cds-suite/cds/internal/xrand"
	"github.com/cds-suite/cds/list"
	"github.com/cds-suite/cds/locks"
	"github.com/cds-suite/cds/pqueue"
	"github.com/cds-suite/cds/queue"
	"github.com/cds-suite/cds/reclaim"
	"github.com/cds-suite/cds/skiplist"
	"github.com/cds-suite/cds/stack"
	"github.com/cds-suite/cds/stm"
)

// The scenario engine complements the throughput-vs-threads figures with a
// matrix of mixed workloads: read/write ratio sweeps, Zipfian vs. uniform
// key streams, and producer/consumer-asymmetric mixes. Every cell is
// measured with RunLatency, so scenario records carry the tail-latency
// percentiles the throughput figures cannot observe — the regime where
// lock-free and blocking designs differ most (Cederman et al.).

// mixBlock is the period over which MixGen proportions are exact.
const mixBlock = 100

// MixGen generates a deterministic stream of operation kinds with exact
// proportions: every consecutive block of 100 draws contains exactly
// pcts[k] operations of kind k, in an order shuffled by the seeded
// generator. Exactness (rather than i.i.d. sampling) keeps op mixes
// identical across algorithms and runs, so cells differ only in the
// structure under test.
type MixGen struct {
	proto []uint8
	block []uint8
	pos   int
	rng   *xrand.Rand
}

// NewMixGen returns a generator over kinds 0..len(pcts)-1. The
// percentages must be non-negative and sum to 100.
func NewMixGen(seed uint64, pcts ...int) *MixGen {
	sum := 0
	for _, p := range pcts {
		if p < 0 {
			panic(fmt.Sprintf("bench: negative mix percentage %d", p))
		}
		sum += p
	}
	if sum != mixBlock {
		panic(fmt.Sprintf("bench: mix percentages sum to %d, want %d", sum, mixBlock))
	}
	g := &MixGen{
		proto: make([]uint8, 0, mixBlock),
		block: make([]uint8, mixBlock),
		pos:   mixBlock, // force a refill on first Next
		rng:   xrand.New(seed),
	}
	for kind, p := range pcts {
		for i := 0; i < p; i++ {
			g.proto = append(g.proto, uint8(kind))
		}
	}
	return g
}

// Next returns the next operation kind.
func (g *MixGen) Next() int {
	if g.pos == mixBlock {
		copy(g.block, g.proto)
		// Fisher-Yates with the per-worker generator: a fresh exact-count
		// permutation per block.
		for i := mixBlock - 1; i > 0; i-- {
			j := g.rng.Intn(i + 1)
			g.block[i], g.block[j] = g.block[j], g.block[i]
		}
		g.pos = 0
	}
	k := g.block[g.pos]
	g.pos++
	return int(k)
}

// ScenarioAlgo is one implementation measured under a scenario.
type ScenarioAlgo struct {
	// Label names the implementation.
	Label string
	// Run measures one cell: construct a fresh structure, prefill it,
	// and drive the scenario's mix at the given thread count with
	// latency sampling.
	Run func(cfg Config, threads int) Result
}

// Scenario is one workload mix applied to every algorithm of a family.
type Scenario struct {
	// Family is the structure family ("stack", "queue", ...).
	Family string
	// Name describes the mix (e.g. "enq-heavy-70/30-uniform").
	Name string
	// Algos are the implementations measured under this mix.
	Algos []ScenarioAlgo
}

// Run measures the scenario across the configured thread sweep, returning
// one record per (algorithm, thread count).
func (s Scenario) Run(cfg Config) []Record {
	var recs []Record
	for _, a := range s.Algos {
		for _, th := range cfg.threads() {
			recs = append(recs, a.Run(cfg, th).Record(s.Family, a.Label, s.Name))
		}
	}
	return recs
}

// Scenarios returns the full mixed-workload matrix: at least two scenario
// cells per structure family beyond the throughput-vs-threads figures.
func Scenarios() []Scenario {
	var all []Scenario
	all = append(all, stackScenarios()...)
	all = append(all, queueScenarios()...)
	all = append(all, mapScenarios()...)
	all = append(all, listScenarios()...)
	all = append(all, skiplistScenarios()...)
	all = append(all, pqueueScenarios()...)
	all = append(all, dequeScenarios()...)
	all = append(all, counterScenarios()...)
	all = append(all, stmScenarios()...)
	all = append(all, lockScenarios()...)
	all = append(all, barrierScenarios()...)
	all = append(all, reclaimScenarios()...)
	all = append(all, contendScenarios()...)
	all = append(all, reclaimStructScenarios()...)
	all = append(all, dualScenarios()...)
	all = append(all, poolScenarios()...)
	all = append(all, cacheScenarios()...)
	all = append(all, segQueueScenarios()...)
	return all
}

// ScenarioFamilies returns the distinct families in matrix order.
func ScenarioFamilies() []string {
	var fams []string
	seen := map[string]bool{}
	for _, s := range Scenarios() {
		if !seen[s.Family] {
			seen[s.Family] = true
			fams = append(fams, s.Family)
		}
	}
	return fams
}

// RunScenarioRecords measures the whole matrix.
func RunScenarioRecords(cfg Config) []Record {
	var recs []Record
	for _, s := range Scenarios() {
		recs = append(recs, s.Run(cfg)...)
	}
	return recs
}

// scenarioFigures renders a family's records as text-mode figures: one
// throughput figure and one p99-latency figure per scenario.
func scenarioFigures(family string, recs []Record) []Figure {
	var order []string
	byScenario := map[string][]Record{}
	for _, r := range recs {
		if _, ok := byScenario[r.Scenario]; !ok {
			order = append(order, r.Scenario)
		}
		byScenario[r.Scenario] = append(byScenario[r.Scenario], r)
	}
	var figs []Figure
	for _, name := range order {
		group := byScenario[name]
		thr := Figure{
			ID:     "S-" + family,
			Title:  fmt.Sprintf("%s scenario %q, throughput (Mops/s)", family, name),
			Family: family,
			XLabel: "threads",
		}
		lat := Figure{
			ID:     "S-" + family,
			Title:  fmt.Sprintf("%s scenario %q, p99 latency (column = µs)", family, name),
			Family: family,
			XLabel: "threads",
		}
		var algos []string
		seen := map[string]bool{}
		for _, r := range group {
			if !seen[r.Algo] {
				seen[r.Algo] = true
				algos = append(algos, r.Algo)
			}
		}
		for _, algo := range algos {
			ts := Series{Label: algo}
			ls := Series{Label: algo, Unit: "us"}
			for _, r := range group {
				if r.Algo != algo {
					continue
				}
				ts.Points = append(ts.Points, Point{X: r.Threads, Mops: r.Value})
				ls.Points = append(ls.Points, Point{X: r.Threads, Mops: float64(r.P99Ns) / 1e3})
			}
			thr.Series = append(thr.Series, ts)
			lat.Series = append(lat.Series, ls)
		}
		figs = append(figs, thr, lat)
	}
	return figs
}

// --- family matrices --------------------------------------------------------

func stackScenarios() []Scenario {
	impls := []struct {
		label string
		mk    func() cds.Stack[int]
	}{
		{"Mutex", func() cds.Stack[int] { return stack.NewMutex[int]() }},
		{"Treiber", func() cds.Stack[int] { return stack.NewTreiber[int]() }},
		{"Elimination", func() cds.Stack[int] { return stack.NewElimination[int](0, 0) }},
		{"FC", func() cds.Stack[int] { return fc.NewStack[int]() }},
	}
	mkScenario := func(name string, pushPct int) Scenario {
		s := Scenario{Family: "stack", Name: name}
		for _, im := range impls {
			mk := im.mk
			s.Algos = append(s.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
				st := mk()
				for i := 0; i < 1024; i++ {
					st.Push(i)
				}
				ops := cfg.ops(200000)
				return RunLatency(th, ops/th+1, func(w int) func(int) {
					mix := NewMixGen(uint64(w)*7919+1, pushPct, 100-pushPct)
					return func(i int) {
						if mix.Next() == 0 {
							st.Push(i)
						} else {
							st.TryPop()
						}
					}
				})
			}})
		}
		return s
	}
	return []Scenario{
		mkScenario("push-heavy-70/30", 70),
		mkScenario("pop-heavy-30/70", 30),
	}
}

func queueScenarios() []Scenario {
	impls := []struct {
		label string
		mk    func() cds.Queue[int]
	}{
		{"Mutex", func() cds.Queue[int] { return queue.NewMutex[int]() }},
		{"TwoLock", func() cds.Queue[int] { return queue.NewTwoLock[int]() }},
		{"MS", func() cds.Queue[int] { return queue.NewMS[int]() }},
		{"ElimMS", func() cds.Queue[int] { return queue.NewElimination[int](0, 0) }},
		{"FC", func() cds.Queue[int] { return fc.NewQueue[int]() }},
	}
	mixed := Scenario{Family: "queue", Name: "enq-heavy-70/30"}
	split := Scenario{Family: "queue", Name: "producer-consumer-split"}
	for _, im := range impls {
		mk := im.mk
		mixed.Algos = append(mixed.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			q := mk()
			for i := 0; i < 1024; i++ {
				q.Enqueue(i)
			}
			ops := cfg.ops(200000)
			return RunLatency(th, ops/th+1, func(w int) func(int) {
				mix := NewMixGen(uint64(w)*7919+1, 70, 30)
				return func(i int) {
					if mix.Next() == 0 {
						q.Enqueue(i)
					} else {
						q.TryDequeue()
					}
				}
			})
		}})
		split.Algos = append(split.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			q := mk()
			for i := 0; i < 1024; i++ {
				q.Enqueue(i)
			}
			ops := cfg.ops(200000)
			// Even workers produce, odd workers consume — the asymmetric
			// regime where head and tail contention decouple (and where
			// the two-lock queue earns its second lock).
			return RunLatency(th, ops/th+1, func(w int) func(int) {
				if w%2 == 0 {
					return func(i int) { q.Enqueue(i) }
				}
				return func(int) { q.TryDequeue() }
			})
		}})
	}
	// The segmented/bounded designs ride along with structure gauges
	// attached (segment-lifecycle counters for the LCRQ, CAS-miss/backoff
	// counters for the MPMC ring); see bench/segqueue.go.
	m2, s2 := segQueueS2Algos()
	mixed.Algos = append(mixed.Algos, m2...)
	split.Algos = append(split.Algos, s2...)
	return []Scenario{mixed, split}
}

func mapScenarios() []Scenario {
	const keyRange = 1 << 16
	mkScenario := func(name string, readPct int, theta float64) Scenario {
		s := Scenario{Family: "cmap", Name: name}
		for _, im := range mapImpls() {
			mk := im.mk
			s.Algos = append(s.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
				m := mk()
				pre := xrand.New(7)
				for i := 0; i < keyRange/2; i++ {
					m.Store(pre.Intn(keyRange), i)
				}
				ops := cfg.ops(100000)
				write := (100 - readPct) / 2
				return RunLatency(th, ops/th+1, func(w int) func(int) {
					keys, err := NewKeyStream(keyRange, theta, uint64(w)+1)
					if err != nil {
						panic(err) // static parameters; cannot fail at runtime
					}
					mix := NewMixGen(uint64(w)*912367+5, readPct, write, 100-readPct-write)
					return func(int) {
						k := int(keys.Next())
						switch mix.Next() {
						case 0:
							m.Load(k)
						case 1:
							m.Store(k, 42)
						default:
							m.Delete(k)
						}
					}
				})
			}})
		}
		return s
	}
	return []Scenario{
		mkScenario("read90/10-uniform", 90, 0),
		mkScenario("read50/50-zipf0.99", 50, 0.99),
	}
}

func setScenario(family, name string, readPct, keyRange int, theta float64, impls []struct {
	label string
	mk    func() cds.Set[int]
}) Scenario {
	s := Scenario{Family: family, Name: name}
	for _, im := range impls {
		mk := im.mk
		s.Algos = append(s.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			set := mk()
			pre := xrand.New(99)
			for i := 0; i < keyRange/2; i++ {
				set.Add(pre.Intn(keyRange))
			}
			ops := cfg.ops(60000)
			write := (100 - readPct) / 2
			return RunLatency(th, ops/th+1, func(w int) func(int) {
				keys, err := NewKeyStream(uint64(keyRange), theta, uint64(w)*2654435761+1)
				if err != nil {
					panic(err) // static parameters; cannot fail at runtime
				}
				mix := NewMixGen(uint64(w)*31+7, readPct, write, 100-readPct-write)
				return func(int) {
					k := int(keys.Next())
					switch mix.Next() {
					case 0:
						set.Contains(k)
					case 1:
						set.Add(k)
					default:
						set.Remove(k)
					}
				}
			})
		}})
	}
	return s
}

func listScenarios() []Scenario {
	impls := []struct {
		label string
		mk    func() cds.Set[int]
	}{
		{"Coarse", func() cds.Set[int] { return list.NewCoarse[int]() }},
		{"Lazy", func() cds.Set[int] { return list.NewLazy[int]() }},
		{"Harris", func() cds.Set[int] { return list.NewHarris[int]() }},
	}
	return []Scenario{
		setScenario("list", "read90/10-uniform-1k", 90, 1024, 0, impls),
		setScenario("list", "read50/50-uniform-1k", 50, 1024, 0, impls),
	}
}

func skiplistScenarios() []Scenario {
	impls := []struct {
		label string
		mk    func() cds.Set[int]
	}{
		{"Lazy", func() cds.Set[int] { return skiplist.NewLazy[int]() }},
		{"LockFree", func() cds.Set[int] { return skiplist.NewLockFree[int]() }},
	}
	return []Scenario{
		setScenario("skiplist", "read90/10-zipf0.99", 90, 1<<16, 0.99, impls),
		setScenario("skiplist", "read50/50-uniform", 50, 1<<16, 0, impls),
	}
}

func pqueueScenarios() []Scenario {
	impls := []struct {
		label string
		mk    func() cds.PriorityQueue[int]
	}{
		{"LockedHeap", func() cds.PriorityQueue[int] {
			return pqueue.NewHeap[int](func(a, b int) bool { return a < b })
		}},
		{"SkipListPQ", func() cds.PriorityQueue[int] { return pqueue.NewSkipList[int]() }},
		{"FCHeap", func() cds.PriorityQueue[int] {
			return pqueue.NewFC[int](func(a, b int) bool { return a < b })
		}},
	}
	mkScenario := func(name string, insertPct int) Scenario {
		s := Scenario{Family: "pqueue", Name: name}
		for _, im := range impls {
			mk := im.mk
			s.Algos = append(s.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
				pq := mk()
				pre := xrand.New(11)
				for i := 0; i < 4096; i++ {
					pq.Insert(pre.Intn(1 << 20))
				}
				ops := cfg.ops(60000)
				return RunLatency(th, ops/th+1, func(w int) func(int) {
					mix := NewMixGen(uint64(w)*13+17, insertPct, 100-insertPct)
					rng := xrand.New(uint64(w) + 17)
					return func(int) {
						if mix.Next() == 0 {
							pq.Insert(rng.Intn(1 << 20))
						} else {
							pq.TryDeleteMin()
						}
					}
				})
			}})
		}
		return s
	}
	return []Scenario{
		mkScenario("insert-heavy-90/10", 90),
		mkScenario("balanced-50/50", 50),
	}
}

func dequeScenarios() []Scenario {
	impls := []struct {
		label string
		mk    func() cds.Deque[int]
	}{
		{"ChaseLev", func() cds.Deque[int] { return deque.NewChaseLev[int](1024) }},
		{"MutexDeque", func() cds.Deque[int] { return deque.NewMutex[int]() }},
		{"FCDeque", func() cds.Deque[int] { return deque.NewFC[int]() }},
	}
	// Worker 0 is the deque's owner (PushBottom/TryPopBottom are
	// owner-only on Chase-Lev); every other worker is a thief driving
	// TryPopTop. The two mixes vary how much the owner feeds the thieves.
	mkScenario := func(name string, pushPct int) Scenario {
		s := Scenario{Family: "deque", Name: name}
		for _, im := range impls {
			mk := im.mk
			s.Algos = append(s.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
				d := mk()
				ops := cfg.ops(200000)
				return RunLatency(th, ops/th+1, func(w int) func(int) {
					if w > 0 {
						return func(int) { d.TryPopTop() }
					}
					mix := NewMixGen(uint64(w)*43+3, pushPct, 100-pushPct)
					return func(i int) {
						if mix.Next() == 0 {
							d.PushBottom(i)
						} else {
							d.TryPopBottom()
						}
					}
				})
			}})
		}
		return s
	}
	return []Scenario{
		mkScenario("owner-push-heavy-75/25", 75),
		mkScenario("owner-balanced-50/50", 50),
	}
}

func counterScenarios() []Scenario {
	impls := []struct {
		label string
		mk    func() cds.Counter
	}{
		{"Atomic", func() cds.Counter { return &counter.Atomic{} }},
		{"Sharded", func() cds.Counter { return counter.NewSharded(0) }},
		{"Approx", func() cds.Counter { return counter.NewApprox(0, 64) }},
	}
	mkScenario := func(name string, incPct int) Scenario {
		s := Scenario{Family: "counter", Name: name}
		for _, im := range impls {
			mk := im.mk
			s.Algos = append(s.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
				c := mk()
				ops := cfg.ops(300000)
				return RunLatency(th, ops/th+1, func(w int) func(int) {
					if incPct == 100 {
						return func(int) { c.Inc() }
					}
					mix := NewMixGen(uint64(w)*53+9, incPct, 100-incPct)
					return func(int) {
						if mix.Next() == 0 {
							c.Inc()
						} else {
							c.Load()
						}
					}
				})
			}})
		}
		return s
	}
	return []Scenario{
		mkScenario("inc-only", 100),
		mkScenario("inc90/load10", 90),
	}
}

func stmScenarios() []Scenario {
	mkScenario := func(name string, accounts int) Scenario {
		s := Scenario{Family: "stm", Name: name}
		s.Algos = append(s.Algos, ScenarioAlgo{Label: "STM", Run: func(cfg Config, th int) Result {
			vars := make([]*stm.TVar[int], accounts)
			for i := range vars {
				vars[i] = stm.NewTVar(1000)
			}
			ops := cfg.ops(60000)
			return RunLatency(th, ops/th+1, func(w int) func(int) {
				rng := xrand.New(uint64(w) + 23)
				return func(int) {
					from, to := rng.Intn(accounts), rng.Intn(accounts)
					if from == to {
						to = (to + 1) % accounts
					}
					stm.Atomically(func(tx *stm.Txn) {
						f := vars[from].Read(tx)
						vars[from].Write(tx, f-1)
						vars[to].Write(tx, vars[to].Read(tx)+1)
					})
				}
			})
		}})
		s.Algos = append(s.Algos, ScenarioAlgo{Label: "GlobalLock", Run: func(cfg Config, th int) Result {
			balances := make([]int, accounts)
			var mu sync.Mutex
			ops := cfg.ops(60000)
			return RunLatency(th, ops/th+1, func(w int) func(int) {
				rng := xrand.New(uint64(w) + 23)
				return func(int) {
					from, to := rng.Intn(accounts), rng.Intn(accounts)
					if from == to {
						to = (to + 1) % accounts
					}
					mu.Lock()
					balances[from]--
					balances[to]++
					mu.Unlock()
				}
			})
		}})
		return s
	}
	return []Scenario{
		mkScenario("transfer-64-accounts", 64),
		mkScenario("transfer-8k-accounts", 1<<13),
	}
}

func barrierScenarios() []Scenario {
	impls := []struct {
		label string
		mk    func(n int) []interface{ Wait() }
	}{
		{"Sense", func(n int) []interface{ Wait() } {
			b := barrier.NewSense(n)
			hs := make([]interface{ Wait() }, n)
			for i := range hs {
				hs[i] = b.Handle()
			}
			return hs
		}},
		{"Tree", func(n int) []interface{ Wait() } {
			b := barrier.NewTree(n)
			hs := make([]interface{ Wait() }, n)
			for i := range hs {
				hs[i] = b.Handle()
			}
			return hs
		}},
		{"Dissemination", func(n int) []interface{ Wait() } {
			b := barrier.NewDissemination(n)
			hs := make([]interface{ Wait() }, n)
			for i := range hs {
				hs[i] = b.Handle()
			}
			return hs
		}},
	}
	// phaseWork sets how much local computation separates episodes: 0 is
	// the pure synchronisation cost, larger values stagger the arrivals —
	// the regime where tree/dissemination structure pays off because early
	// arrivals overlap waiting with the stragglers' work.
	mkScenario := func(name string, phaseWork int) Scenario {
		s := Scenario{Family: "barrier", Name: name}
		for _, im := range impls {
			mk := im.mk
			s.Algos = append(s.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
				hs := mk(th)
				episodes := cfg.ops(20000)
				return RunLatency(th, episodes, func(w int) func(int) {
					h := hs[w]
					sink := uint64(w)
					return func(int) {
						for k := 0; k < phaseWork*(w+1)/th; k++ {
							xrand.SplitMix64(&sink)
						}
						h.Wait()
					}
				})
			}})
		}
		return s
	}
	return []Scenario{
		mkScenario("back-to-back-episodes", 0),
		mkScenario("staggered-arrival", 64),
	}
}

func reclaimScenarios() []Scenario {
	type node struct{ v int }
	mkScenario := func(name string, readPct int) Scenario {
		s := Scenario{Family: "reclaim", Name: name}
		s.Algos = append(s.Algos, ScenarioAlgo{Label: "EBR", Run: func(cfg Config, th int) Result {
			c := epoch.NewCollector()
			var shared atomic.Pointer[node]
			shared.Store(&node{})
			ops := cfg.ops(100000)
			return RunLatency(th, ops/th+1, func(w int) func(int) {
				p := c.Register()
				mix := NewMixGen(uint64(w)*61+31, readPct, 100-readPct)
				return func(int) {
					if mix.Next() == 0 {
						p.Pin()
						_ = shared.Load()
						p.Unpin()
					} else {
						old := shared.Swap(&node{})
						p.Retire(func() { _ = old })
					}
				}
			})
		}})
		s.Algos = append(s.Algos, ScenarioAlgo{Label: "HazardPtr", Run: func(cfg Config, th int) Result {
			d := hazard.NewDomain()
			var shared atomic.Pointer[node]
			shared.Store(&node{})
			ops := cfg.ops(100000)
			return RunLatency(th, ops/th+1, func(w int) func(int) {
				h := d.NewHandle(1)
				mix := NewMixGen(uint64(w)*61+31, readPct, 100-readPct)
				return func(int) {
					if mix.Next() == 0 {
						hazard.Protect(h.Slot(0), &shared)
						h.Slot(0).Clear()
					} else {
						old := shared.Swap(&node{})
						h.Retire(old, func() { _ = old })
					}
				}
			})
		}})
		return s
	}
	return []Scenario{
		mkScenario("read-mostly-90/10", 90),
		mkScenario("swap-heavy-50/50", 50),
	}
}

// delegatorGauges flattens a combining backend's stats into record gauges.
// avg_batch is the headline: batch size growing with the thread count is
// the signature of delegation working, and comparing it across the
// FlatCombining/CC-Synch/DSM-Synch rows of one cell shows which protocol
// keeps batches full.
func delegatorGauges(s contend.DelegatorStats) map[string]float64 {
	return map[string]float64{
		"batches":      float64(s.Batches),
		"ops_combined": float64(s.Ops),
		"max_batch":    float64(s.MaxBatch),
		"avg_batch":    s.AvgBatch(),
		"handoffs":     float64(s.Handoffs),
	}
}

// combiningBackendSweep is the delegation-strategy axis of the S13 cells:
// every combining-backed structure is measured over all three backends so
// the flat-combining/CC-Synch/DSM-Synch comparison is direct per scenario.
func combiningBackendSweep() []contend.Backend { return contend.Backends() }

// contendScenarios showcases the contention-management layer: the
// combining/elimination-backed variants under the high-contention symmetric
// mixes they were designed for. Unlike the family matrices above, these
// cells start empty (no prefill): the symmetric 50/50 mix then keeps the
// structures hovering near empty, which maximises head/tail (or top)
// collisions — the regime where elimination pairs operations off and
// combining batches them, and where the plain CAS loops degrade. Every
// combining-backed row is swept over the three delegation backends and
// carries the backend gauges (batches, avg/max batch, handoffs).
func contendScenarios() []Scenario {
	queueSc := Scenario{Family: "contend", Name: "queue-symmetric-50/50-empty"}
	type qimpl struct {
		label  string
		mk     func() cds.Queue[int]
		gauges func(cds.Queue[int]) map[string]float64
	}
	qimpls := []qimpl{
		{label: "MS", mk: func() cds.Queue[int] { return queue.NewMS[int]() }},
		{label: "ElimMS", mk: func() cds.Queue[int] { return queue.NewElimination[int](0, 0) }},
	}
	for _, be := range combiningBackendSweep() {
		be := be
		label := "FC"
		if be != contend.BackendFlatCombining {
			label = "FC/" + be.String()
		}
		qimpls = append(qimpls, qimpl{
			label: label,
			mk:    func() cds.Queue[int] { return fc.NewQueue[int](fc.WithBackend(be)) },
			gauges: func(q cds.Queue[int]) map[string]float64 {
				return delegatorGauges(q.(*fc.Queue[int]).Stats())
			},
		})
	}
	for _, im := range qimpls {
		im := im
		queueSc.Algos = append(queueSc.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			q := im.mk()
			ops := cfg.ops(200000)
			res := RunLatency(th, ops/th+1, func(w int) func(int) {
				mix := NewMixGen(uint64(w)*104729+13, 50, 50)
				return func(i int) {
					if mix.Next() == 0 {
						q.Enqueue(i)
					} else {
						q.TryDequeue()
					}
				}
			})
			if im.gauges != nil {
				res.Gauges = im.gauges(q)
			}
			return res
		}})
	}

	pqSc := Scenario{Family: "contend", Name: "pqueue-symmetric-50/50"}
	type pqimpl struct {
		label  string
		mk     func() cds.PriorityQueue[int]
		gauges func(cds.PriorityQueue[int]) map[string]float64
	}
	pqimpls := []pqimpl{
		{label: "LockedHeap", mk: func() cds.PriorityQueue[int] {
			return pqueue.NewHeap[int](func(a, b int) bool { return a < b })
		}},
		{label: "SkipListPQ", mk: func() cds.PriorityQueue[int] { return pqueue.NewSkipList[int]() }},
	}
	for _, be := range combiningBackendSweep() {
		be := be
		label := "FCHeap"
		if be != contend.BackendFlatCombining {
			label = "FCHeap/" + be.String()
		}
		pqimpls = append(pqimpls, pqimpl{
			label: label,
			mk: func() cds.PriorityQueue[int] {
				return pqueue.NewFC[int](func(a, b int) bool { return a < b }, pqueue.WithBackend(be))
			},
			gauges: func(q cds.PriorityQueue[int]) map[string]float64 {
				return delegatorGauges(q.(*pqueue.FC[int]).Stats())
			},
		})
	}
	for _, im := range pqimpls {
		im := im
		pqSc.Algos = append(pqSc.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			pq := im.mk()
			ops := cfg.ops(60000)
			res := RunLatency(th, ops/th+1, func(w int) func(int) {
				mix := NewMixGen(uint64(w)*104729+29, 50, 50)
				rng := xrand.New(uint64(w) + 43)
				return func(int) {
					if mix.Next() == 0 {
						pq.Insert(rng.Intn(1 << 20))
					} else {
						pq.TryDeleteMin()
					}
				}
			})
			if im.gauges != nil {
				res.Gauges = im.gauges(pq)
			}
			return res
		}})
	}

	// The deque cell drives both ends from every worker — the symmetric
	// workload Chase-Lev's owner restriction rules out, so the combining
	// deque is compared against the locked baseline.
	dqSc := Scenario{Family: "contend", Name: "deque-symmetric-both-ends"}
	type dqimpl struct {
		label  string
		mk     func() cds.Deque[int]
		gauges func(cds.Deque[int]) map[string]float64
	}
	dqimpls := []dqimpl{
		{label: "MutexDeque", mk: func() cds.Deque[int] { return deque.NewMutex[int]() }},
	}
	for _, be := range combiningBackendSweep() {
		be := be
		label := "FCDeque"
		if be != contend.BackendFlatCombining {
			label = "FCDeque/" + be.String()
		}
		dqimpls = append(dqimpls, dqimpl{
			label: label,
			mk:    func() cds.Deque[int] { return deque.NewFC[int](deque.WithBackend(be)) },
			gauges: func(d cds.Deque[int]) map[string]float64 {
				return delegatorGauges(d.(*deque.FC[int]).Stats())
			},
		})
	}
	for _, im := range dqimpls {
		im := im
		dqSc.Algos = append(dqSc.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			d := im.mk()
			ops := cfg.ops(200000)
			res := RunLatency(th, ops/th+1, func(w int) func(int) {
				mix := NewMixGen(uint64(w)*104729+31, 40, 30, 30)
				return func(i int) {
					switch mix.Next() {
					case 0:
						d.PushBottom(i)
					case 1:
						d.TryPopBottom()
					default:
						d.TryPopTop()
					}
				}
			})
			if im.gauges != nil {
				res.Gauges = im.gauges(d)
			}
			return res
		}})
	}

	// The counter cell is the smallest combining payload — pure delegation
	// overhead, no structure work to hide it — so the three backends (and
	// the atomic baseline) separate most cleanly here.
	ctrSc := Scenario{Family: "contend", Name: "counter-inc-heavy-90/10"}
	type cimpl struct {
		label  string
		mk     func() cds.Counter
		gauges func(cds.Counter) map[string]float64
	}
	cimpls := []cimpl{
		{label: "Atomic", mk: func() cds.Counter { return &counter.Atomic{} }},
	}
	for _, be := range combiningBackendSweep() {
		be := be
		label := "Combining"
		if be != contend.BackendFlatCombining {
			label = "Combining/" + be.String()
		}
		cimpls = append(cimpls, cimpl{
			label: label,
			mk:    func() cds.Counter { return counter.NewCombining(counter.WithBackend(be)) },
			gauges: func(c cds.Counter) map[string]float64 {
				return delegatorGauges(c.(*counter.Combining).Stats())
			},
		})
	}
	for _, im := range cimpls {
		im := im
		ctrSc.Algos = append(ctrSc.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
			c := im.mk()
			ops := cfg.ops(200000)
			res := RunLatency(th, ops/th+1, func(w int) func(int) {
				mix := NewMixGen(uint64(w)*104729+37, 90, 10)
				return func(int) {
					if mix.Next() == 0 {
						c.Inc()
					} else {
						c.Load()
					}
				}
			})
			if im.gauges != nil {
				res.Gauges = im.gauges(c)
			}
			return res
		}})
	}

	return []Scenario{queueSc, pqSc, dqSc, ctrSc}
}

// reclaimStructScenarios (experiment S14) measures the reclamation layer
// where it actually lives: wired into the lock-free structures via
// WithReclaim. Two delete-heavy churn mixes exercise the retire/unlink
// hot path on the list and the map, and a stalled-reader cell pins one
// guard across long batches on the skip list — the adversarial regime
// where EBR's pending garbage grows without bound while HP's stays capped
// at the slot count. Every record carries the end-of-run pending_garbage
// and reclaimed gauges.
func reclaimStructScenarios() []Scenario {
	const keyRange = 256

	listSc := Scenario{Family: "reclaim-structs", Name: "list-delete-heavy-40/40/20"}
	for _, v := range reclaimVariantSweep() {
		v := v
		listSc.Algos = append(listSc.Algos, ScenarioAlgo{Label: "Harris/" + v.label, Run: func(cfg Config, th int) Result {
			return reclaimListChurn(v, th, cfg.ops(60000), keyRange)
		}})
	}

	mapSc := Scenario{Family: "reclaim-structs", Name: "map-delete-heavy-40/40/20"}
	for _, v := range reclaimVariantSweep() {
		v := v
		mapSc.Algos = append(mapSc.Algos, ScenarioAlgo{Label: "SplitOrdered/" + v.label, Run: func(cfg Config, th int) Result {
			return reclaimMapChurn(v, th, cfg.ops(60000), keyRange)
		}})
	}

	// Stalled-reader pressure: worker 0 holds a guard section open across
	// stallBatch operations while the rest churn add/remove. EBR cannot
	// advance the epoch past a pinned reader, so its pending gauge grows
	// with the stall length; HP's stays bounded by the slot count.
	const stallBatch = 2048
	stallSc := Scenario{Family: "reclaim-structs", Name: "skiplist-stalled-reader-churn"}
	for _, v := range reclaimVariantSweep() {
		if v.recycle {
			continue // the skip list has no recycling mode
		}
		v := v
		stallSc.Algos = append(stallSc.Algos, ScenarioAlgo{Label: "LockFree/" + v.label, Run: func(cfg Config, th int) Result {
			var dom reclaim.Domain
			var opts []skiplist.Option
			if v.dom != nil {
				dom = v.dom()
				opts = append(opts, skiplist.WithReclaim(dom))
			}
			s := skiplist.NewLockFree[int](opts...)
			pre := xrand.New(3)
			for i := 0; i < keyRange/2; i++ {
				s.Add(pre.Intn(keyRange))
			}
			var stall reclaim.Guard
			if dom != nil {
				stall = dom.NewGuard(1)
			}
			ops := cfg.ops(60000)
			res := RunLatency(th, ops/th+1, func(w int) func(int) {
				if w == 0 {
					// The stalled reader: reads inside a section it only
					// leaves every stallBatch operations.
					rng := xrand.New(uint64(w) + 51)
					count := 0
					if stall != nil {
						stall.Enter()
					}
					//cdsvet:ignore guardexit stalled-reader scenario: the guard deliberately stays entered across the factory return to pin reclamation
					return func(int) {
						s.Contains(rng.Intn(keyRange))
						count++
						if stall != nil && count%stallBatch == 0 {
							stall.Exit()
							stall.Enter()
						}
					} //cdsvet:ignore guardexit stalled-reader scenario: the worker exits and re-enters only every stallBatch ops, holding the guard between calls on purpose
				}
				mix := NewMixGen(uint64(w)*61+31, 50, 50)
				rng := xrand.New(uint64(w)*7919 + 5)
				return func(int) {
					k := rng.Intn(keyRange)
					if mix.Next() == 0 {
						s.Add(k)
					} else {
						s.Remove(k)
					}
				}
			})
			// Snapshot the gauges while the stall is still pinned: the
			// whole point is the garbage a stalled reader strands.
			res.Gauges = reclaimGauges(dom)
			if stall != nil {
				stall.Exit()
				stall.Release()
			}
			return res
		}})
	}

	return []Scenario{listSc, mapSc, stallSc}
}

// chanBQ adapts a Go channel to the blocking-queue shape so the dual
// scenarios carry the obvious baseline: the runtime's own blocking queue.
type chanBQ struct{ ch chan int }

func (q chanBQ) Put(ctx context.Context, v int) error {
	select {
	case q.ch <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (q chanBQ) Take(ctx context.Context) (int, error) {
	select {
	case v := <-q.ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func (q chanBQ) Len() int { return len(q.ch) }

// dualGauges surfaces a dual structure's waiter-management counters as
// record gauges (the blocking counterpart of the reclamation cells'
// pending_garbage/reclaimed pair).
func dualGauges(st dual.Stats) map[string]float64 {
	return map[string]float64{
		"reservations": float64(st.Reservations),
		"fulfilled":    float64(st.Fulfilled),
		"parks":        float64(st.Parks),
		"cancelled":    float64(st.Cancelled),
		"handoffs":     float64(st.Handoffs),
	}
}

// dualOpTimeout bounds every blocking operation in the dual cells. It is
// the cancellation budget of the scenario family: an op that finds no
// partner (or no room) within it returns ctx.Err, counts in the cancelled
// gauge, and keeps every cell terminating at any thread count — including
// the degenerate single-thread cells where a rendezvous can never pair.
// Blocking cells therefore measure wait behaviour, not pure CPU cost:
// latency percentiles include parked time and timer overhead, which is
// exactly what distinguishes the designs (see README, "Reading the
// benchmarks").
const dualOpTimeout = 100 * time.Microsecond

// dualScenarios (experiment S15) measures the blocking family under the
// three regimes the dual design targets: producer-heavy backpressure,
// bursty production with consumer droughts (parks), and a symmetric
// rendezvous mix with tight cancellation deadlines.
func dualScenarios() []Scenario {
	impls := []struct {
		label string
		mk    func(cap int) (cds.BlockingQueue[int], func() map[string]float64)
	}{
		{"DualMS", func(int) (cds.BlockingQueue[int], func() map[string]float64) {
			q := dual.NewMSQueue[int]()
			return q, func() map[string]float64 { return dualGauges(q.Stats()) }
		}},
		{"Sync", func(int) (cds.BlockingQueue[int], func() map[string]float64) {
			q := dual.NewSync[int](0, 0)
			return q, func() map[string]float64 { return dualGauges(q.Stats()) }
		}},
		{"Bounded", func(capacity int) (cds.BlockingQueue[int], func() map[string]float64) {
			q := dual.NewBounded[int](capacity)
			return q, func() map[string]float64 { return dualGauges(q.Stats()) }
		}},
		// Buffered channel: the baseline every Go blocking queue is
		// implicitly compared against. No gauges — the runtime does not
		// expose its park counts.
		{"Channel", func(capacity int) (cds.BlockingQueue[int], func() map[string]float64) {
			return chanBQ{ch: make(chan int, capacity)}, nil
		}},
	}
	const capacity = 1024

	mkScenario := func(name string, roles func(w int, q cds.BlockingQueue[int]) func(i int)) Scenario {
		s := Scenario{Family: "dual", Name: name}
		for _, im := range impls {
			mk := im.mk
			s.Algos = append(s.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
				q, gauges := mk(capacity)
				ops := cfg.ops(60000)
				res := RunLatency(th, ops/th+1, func(w int) func(int) {
					return roles(w, q)
				})
				if gauges != nil {
					res.Gauges = gauges()
				}
				return res
			}})
		}
		return s
	}

	put := func(q cds.BlockingQueue[int], v int) {
		ctx, cancel := context.WithTimeout(context.Background(), dualOpTimeout)
		_ = q.Put(ctx, v)
		cancel()
	}
	take := func(q cds.BlockingQueue[int]) {
		ctx, cancel := context.WithTimeout(context.Background(), dualOpTimeout)
		_, _ = q.Take(ctx)
		cancel()
	}

	return []Scenario{
		// Two producers per consumer: the unbounded queue absorbs the
		// surplus, the bounded queue and channel exert backpressure
		// (producer parks), the synchronous queue throttles producers to
		// the consumer rate by construction.
		mkScenario("producer-heavy-2:1", func(w int, q cds.BlockingQueue[int]) func(int) {
			// Worker 1, 4, 7, ... consume, the rest produce: at two
			// threads the cell is a clean 1:1 pair, from four on it is
			// producer-heavy.
			if w%3 == 1 {
				return func(int) { take(q) }
			}
			return func(i int) { put(q, i) }
		}),
		// One bursty producer, the rest consumers: bursts of 64 puts
		// alternate with equal droughts, so consumers oscillate between
		// draining data and parking on reservations (the parks and
		// cancelled gauges are the signal here).
		mkScenario("burst-64-1p-consumers", func(w int, q cds.BlockingQueue[int]) func(int) {
			if w == 0 {
				return func(i int) {
					if (i/64)%2 == 0 {
						put(q, i)
					} else {
						runtime.Gosched() // drought: the producer goes quiet
					}
				}
			}
			return func(int) { take(q) }
		}),
		// Symmetric 50/50 put/take from every worker under the tight
		// deadline: the rendezvous regime (and, at one thread, the
		// degenerate all-cancellations cell that sizes the cancellation
		// path itself).
		mkScenario("rendezvous-50/50-cancel", func(w int, q cds.BlockingQueue[int]) func(int) {
			mix := NewMixGen(uint64(w)*271+9, 50, 50)
			return func(i int) {
				if mix.Next() == 0 {
					put(q, i)
				} else {
					take(q)
				}
			}
		}),
	}
}

func lockScenarios() []Scenario {
	impls := []struct {
		label string
		mk    func() sync.Locker
	}{
		{"sync.Mutex", func() sync.Locker { return &sync.Mutex{} }},
		{"Backoff", func() sync.Locker { return &locks.BackoffLock{} }},
		{"Ticket", func() sync.Locker { return &locks.TicketLock{} }},
	}
	// csWork controls the critical-section length: 0 is the tiny
	// increment-only section of F1, larger values emulate real protected
	// work (~4ns per SplitMix64 round).
	mkScenario := func(name string, csWork int) Scenario {
		s := Scenario{Family: "locks", Name: name}
		for _, im := range impls {
			mk := im.mk
			s.Algos = append(s.Algos, ScenarioAlgo{Label: im.label, Run: func(cfg Config, th int) Result {
				l := mk()
				shared := uint64(0)
				ops := cfg.ops(100000)
				return RunLatency(th, ops/th+1, func(w int) func(int) {
					return func(int) {
						l.Lock()
						shared++
						for k := 0; k < csWork; k++ {
							xrand.SplitMix64(&shared)
						}
						l.Unlock()
					}
				})
			}})
		}
		return s
	}
	return []Scenario{
		mkScenario("tiny-critical-section", 0),
		mkScenario("long-critical-section-~250ns", 64),
	}
}
