package dual

import "github.com/cds-suite/cds/reclaim"

// Option configures a dual-structure constructor.
type Option func(*options)

type options struct {
	dom reclaim.Domain
}

// WithReclaim attaches a safe-memory-reclamation domain (reclaim.NewEBR,
// reclaim.NewHP) to the structure: unlinked transfer-list nodes are
// retired through it and traversals follow the domain's protection
// protocol. Guards are never held across a park, so a blocked waiter does
// not stall the domain. The default is the zero-cost GC path.
//
// Unlike the total-operation structures there is no WithRecycling: a
// waiter still reads its own node after the fulfilling side may have
// retired it, which is safe only while the GC keeps the memory alive.
func WithReclaim(d reclaim.Domain) Option {
	return func(o *options) { o.dom = d }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.dom != nil && !o.dom.Deferred() {
		o.dom = nil // explicit GC domain: same as the default fast path
	}
	return o
}
