package dual_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cds-suite/cds/dual"
	"github.com/cds-suite/cds/reclaim"
)

// reclaimVariants returns the reclamation configurations every dual test
// runs under: the default GC path plus aggressive EBR and HP domains (so
// retirements actually happen inside the test windows).
func reclaimVariants() map[string][]dual.Option {
	ebr := reclaim.NewEBR()
	ebr.SetAdvanceInterval(1)
	hp := reclaim.NewHP()
	hp.SetScanThreshold(1)
	return map[string][]dual.Option{
		"GC":  nil,
		"EBR": {dual.WithReclaim(ebr)},
		"HP":  {dual.WithReclaim(hp)},
	}
}

func TestMSQueueBasicFIFO(t *testing.T) {
	q := dual.NewMSQueue[int]()
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	if got := q.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	for i := 0; i < 100; i++ {
		v, err := q.Take(context.Background())
		if err != nil || v != i {
			t.Fatalf("Take #%d = (%d, %v), want (%d, nil)", i, v, err, i)
		}
	}
	if v, ok := q.TryDequeue(); ok {
		t.Fatalf("TryDequeue on empty = (%d, true)", v)
	}
}

// TestMSQueueBlockingTakeFulfilledFIFO is the acceptance-criteria test:
// takes that blocked on an empty queue are fulfilled in reservation order
// by later enqueues.
func TestMSQueueBlockingTakeFulfilledFIFO(t *testing.T) {
	for name, opts := range reclaimVariants() {
		t.Run(name, func(t *testing.T) {
			q := dual.NewMSQueue[int](opts...)
			const takers = 8
			results := make([]int, takers)
			var wg sync.WaitGroup
			for i := 0; i < takers; i++ {
				// Serialize reservation registration so arrival order is
				// deterministic: wait until taker i's reservation is in
				// the queue before starting taker i+1.
				before := q.Stats().Reservations
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					v, err := q.Take(context.Background())
					if err != nil {
						t.Errorf("taker %d: %v", i, err)
					}
					results[i] = v
				}(i)
				deadline := time.Now().Add(5 * time.Second)
				for q.Stats().Reservations == before {
					if time.Now().After(deadline) {
						t.Fatalf("taker %d never registered a reservation", i)
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
			for v := 0; v < takers; v++ {
				q.Enqueue(v)
			}
			wg.Wait()
			for i, v := range results {
				if v != i {
					t.Fatalf("results = %v: taker %d got %d (reservations not FIFO)", results, i, v)
				}
			}
			st := q.Stats()
			if st.Reservations != takers || st.Fulfilled != takers {
				t.Errorf("stats = %+v, want %d reservations all fulfilled", st, takers)
			}
		})
	}
}

func TestMSQueueTakeCancellation(t *testing.T) {
	q := dual.NewMSQueue[int]()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.Take(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Take on empty with expiring ctx: err = %v", err)
	}
	if st := q.Stats(); st.Cancelled != 1 {
		t.Fatalf("stats = %+v, want 1 cancelled", st)
	}
	// The withdrawn reservation must not swallow a later value.
	q.Enqueue(42)
	v, err := q.Take(context.Background())
	if err != nil || v != 42 {
		t.Fatalf("Take after cancelled reservation = (%d, %v), want (42, nil)", v, err)
	}
}

// TestMSQueueConcurrentChurn hammers enqueue/take from both sides and
// checks conservation: every value enqueued is taken exactly once.
func TestMSQueueConcurrentChurn(t *testing.T) {
	for name, opts := range reclaimVariants() {
		t.Run(name, func(t *testing.T) {
			q := dual.NewMSQueue[int](opts...)
			const (
				producers = 4
				consumers = 4
				perProd   = 2000
			)
			var sum, want atomic.Int64
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProd; i++ {
						v := p*perProd + i
						want.Add(int64(v))
						q.Enqueue(v)
					}
				}(p)
			}
			total := producers * perProd
			each := total / consumers
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					for i := 0; i < each; i++ {
						v, err := q.Take(ctx)
						if err != nil {
							t.Errorf("Take: %v", err)
							return
						}
						sum.Add(int64(v))
					}
				}()
			}
			wg.Wait()
			if sum.Load() != want.Load() {
				t.Fatalf("sum of taken = %d, want %d", sum.Load(), want.Load())
			}
			if got := q.Len(); got != 0 {
				t.Fatalf("Len after drain = %d, want 0", got)
			}
		})
	}
}

func TestSyncRendezvous(t *testing.T) {
	for name, opts := range reclaimVariants() {
		t.Run(name, func(t *testing.T) {
			s := dual.NewSync[string](0, 0, opts...)
			done := make(chan error, 1)
			go func() {
				done <- s.Put(context.Background(), "hello")
			}()
			v, err := s.Take(context.Background())
			if err != nil || v != "hello" {
				t.Fatalf("Take = (%q, %v), want (hello, nil)", v, err)
			}
			if err := <-done; err != nil {
				t.Fatalf("Put: %v", err)
			}
			if s.Len() != 0 {
				t.Fatalf("Len = %d, want 0", s.Len())
			}
		})
	}
}

func TestSyncPutBlocksWithoutTaker(t *testing.T) {
	s := dual.NewSync[int](0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Put(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Put without taker: err = %v", err)
	}
	// The cancelled offer must not be delivered to a later taker.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if v, err := s.Take(ctx2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Take after cancelled Put = (%d, %v), want deadline error", v, err)
	}
}

// TestSyncPairsExactly pairs many concurrent putters and takers and
// checks every value is received exactly once.
func TestSyncPairsExactly(t *testing.T) {
	s := dual.NewSync[int](0, 0)
	const pairs = 8
	const perSide = 500
	var got sync.Map
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for w := 0; w < pairs; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSide; i++ {
				if err := s.Put(ctx, w*perSide+i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < perSide; i++ {
				v, err := s.Take(ctx)
				if err != nil {
					t.Errorf("Take: %v", err)
					return
				}
				if _, dup := got.LoadOrStore(v, true); dup {
					t.Errorf("value %d delivered twice", v)
				}
			}
		}()
	}
	wg.Wait()
	n := 0
	got.Range(func(any, any) bool { n++; return true })
	if n != pairs*perSide {
		t.Fatalf("received %d distinct values, want %d", n, pairs*perSide)
	}
	st := s.Stats()
	if st.Handoffs+st.Fulfilled == 0 {
		t.Error("no rendezvous recorded in stats")
	}
}

func TestBoundedBlockingBothSides(t *testing.T) {
	q := dual.NewBounded[int](2)
	bg := context.Background()
	if q.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", q.Cap())
	}
	if err := q.Put(bg, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Put(bg, 2); err != nil {
		t.Fatal(err)
	}
	// Full: Put must block until a Take frees a slot.
	done := make(chan error, 1)
	go func() { done <- q.Put(bg, 3) }()
	select {
	case err := <-done:
		t.Fatalf("Put on full queue returned early: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	if v, err := q.Take(bg); err != nil || v != 1 {
		t.Fatalf("Take = (%d, %v), want (1, nil)", v, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("unblocked Put: %v", err)
	}
	// The queue is full again ({2, 3}): a Put with an expiring context
	// must cancel cleanly.
	ctx, cancel := context.WithTimeout(bg, 20*time.Millisecond)
	defer cancel()
	if err := q.Put(ctx, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Put on full with expiring ctx: %v", err)
	}
	for _, want := range []int{2, 3} {
		if v, err := q.Take(bg); err != nil || v != want {
			t.Fatalf("Take = (%d, %v), want (%d, nil)", v, err, want)
		}
	}
}

// TestBoundedProducerConsumer runs a full producer/consumer mesh over a
// tiny capacity so both waiter sets engage, checking conservation.
func TestBoundedProducerConsumer(t *testing.T) {
	q := dual.NewBounded[int](4)
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
	)
	var sum, want atomic.Int64
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := p*perProd + i
				want.Add(int64(v))
				if err := q.Put(ctx, v); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(p)
	}
	each := producers * perProd / consumers
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				v, err := q.Take(ctx)
				if err != nil {
					t.Errorf("Take: %v", err)
					return
				}
				sum.Add(int64(v))
			}
		}()
	}
	wg.Wait()
	if sum.Load() != want.Load() {
		t.Fatalf("sum = %d, want %d", sum.Load(), want.Load())
	}
	if st := q.Stats(); st.Parks > 0 && st.Fulfilled == 0 {
		t.Errorf("stats = %+v: parks without fulfilments", st)
	}
}

// TestMSQueueReclaimRetires checks that WithReclaim actually routes
// dequeued dummies through the domain (the gauges the S15 cells report).
func TestMSQueueReclaimRetires(t *testing.T) {
	for _, mk := range []struct {
		name string
		dom  reclaim.Domain
	}{
		{"EBR", func() reclaim.Domain { d := reclaim.NewEBR(); d.SetAdvanceInterval(1); return d }()},
		{"HP", func() reclaim.Domain { d := reclaim.NewHP(); d.SetScanThreshold(1); return d }()},
	} {
		t.Run(mk.name, func(t *testing.T) {
			q := dual.NewMSQueue[int](dual.WithReclaim(mk.dom))
			for i := 0; i < 1000; i++ {
				q.Enqueue(i)
				if _, err := q.Take(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			if total := mk.dom.Reclaimed() + mk.dom.Pending(); total == 0 {
				t.Errorf("domain saw no retirements (reclaimed=%d pending=%d)",
					mk.dom.Reclaimed(), mk.dom.Pending())
			}
		})
	}
}

// TestTakeCancellationStorm races cancellations against fulfilments: a
// value may be lost only if a fulfilled reservation is misreported as
// cancelled (or vice versa), so produced == consumed + still-queued.
func TestTakeCancellationStorm(t *testing.T) {
	q := dual.NewMSQueue[int]()
	const consumers = 8
	const attempts = 300
	var taken atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%5)*100*time.Microsecond)
				if _, err := q.Take(ctx); err == nil {
					taken.Add(1)
				}
				cancel()
			}
		}(c)
	}
	const produced = consumers * attempts / 2
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < produced; i++ {
			q.Enqueue(i)
			if i%16 == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	left := 0
	for {
		if _, ok := q.TryDequeue(); !ok {
			break
		}
		left++
	}
	if got := int(taken.Load()) + left; got != produced {
		t.Fatalf("taken(%d) + leftover(%d) = %d, want %d (value lost or duplicated)",
			taken.Load(), left, got, produced)
	}
	st := q.Stats()
	if st.Cancelled == 0 {
		t.Log("warning: no cancellations exercised (timing)")
	}
}

func ExampleMSQueue() {
	q := dual.NewMSQueue[string]()
	done := make(chan string)
	go func() {
		v, _ := q.Take(context.Background()) // blocks until the enqueue below
		done <- v
	}()
	q.Enqueue("job")
	fmt.Println(<-done)
	// Output: job
}

// TestZeroSizeElementType pins the sentinel-aliasing regression: for a
// zero-size T every *T shares one address, so the item state machine must
// not be built on bare value pointers. struct{} queues are the natural
// way to use a blocking queue as a semaphore/signal.
func TestZeroSizeElementType(t *testing.T) {
	q := dual.NewMSQueue[struct{}]()
	q.Enqueue(struct{}{})
	if got := q.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := q.Take(ctx); err != nil {
		t.Fatalf("Take of zero-size element: %v", err)
	}

	s := dual.NewSync[struct{}](0, 0)
	done := make(chan error, 1)
	go func() { done <- s.Put(ctx, struct{}{}) }()
	if _, err := s.Take(ctx); err != nil {
		t.Fatalf("Sync.Take of zero-size element: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Sync.Put of zero-size element: %v", err)
	}
}
