// Package dual implements blocking (partial-operation) queues — the
// survey's pools and rendezvous channels — as dual data structures in the
// sense of Scherer & Scott (DISC 2004): when a precondition fails (take on
// empty, put on full or unmatched), the operation does not spin on the
// whole structure or fail; it installs an explicit *reservation* that a
// later inverse operation finds and fulfils, splitting one blocking
// operation into two nonblocking halves with a wait in between.
//
// Three structures share one waiter-management core (internal/park:
// per-waiter permits with spin-then-park and context cancellation):
//
//   - MSQueue: the dualized Michael–Scott queue. Enqueue is total and
//     nonblocking; Take on an empty queue appends a reservation node to
//     the same linked list the data travels on, so reservations are
//     fulfilled in strict FIFO order by later enqueues. Progress:
//     obstruction of the queue itself is lock-free (every CAS retry means
//     another operation completed); a parked taker's progress depends on
//     its fulfiller's unpark, as in all dual structures.
//   - Sync: a synchronous queue (rendezvous channel): Put and Take both
//     block until they pair. Near-simultaneous arrivals pair off in a
//     contend.HandoffArray without touching the slow path; unmatched
//     operations park on the dual transfer list, where waiting takers are
//     fulfilled before the handoff array is consulted.
//   - Bounded: a capacity-bounded blocking MPMC queue wrapping
//     queue.MPMC with not-empty/not-full waiter sets (park.Lot). Progress:
//     blocking (waiter management takes a lock), with the MPMC ring's
//     nonblocking fast path when no wait is needed.
//
// All three satisfy the root cds.BlockingQueue interface: Put and Take
// accept a context and return its error if cancelled before completion. A
// cancelled reservation is withdrawn with a single CAS and skipped by
// later fulfilments; it linearizes as an observation of the failed
// precondition (an empty queue), so a timed-out Take is equivalent to a
// failed TryDequeue for linearizability purposes.
//
// Constructed WithReclaim, dequeued nodes are retired through a
// reclaim.Domain (guards are never held while parked, so a blocked waiter
// cannot stall epoch reclamation). Node recycling is deliberately not
// offered: a waiter reads its own reservation node after that node may
// already have been retired by the fulfilling side, which is safe while
// the GC keeps the memory alive but would be an ABA under eager reuse.
//
// Each structure exposes a Stats snapshot (reservations, fulfilments,
// parks, cancellations, fast-path handoffs) that the S15 benchmark
// scenarios report as record gauges.
package dual
