package dual

import (
	"context"
	"runtime"
	"sync/atomic"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/internal/park"
	"github.com/cds-suite/cds/reclaim"
)

// All three dual structures satisfy the root blocking-queue contract.
var (
	_ cds.BlockingQueue[int] = (*MSQueue[int])(nil)
	_ cds.BlockingQueue[int] = (*Sync[int])(nil)
	_ cds.BlockingQueue[int] = (*Bounded[int])(nil)
)

// transfer.go holds the dual transfer list: one Michael–Scott-style linked
// queue whose nodes carry either data or reservations, generalising the
// Scherer–Scott dualqueue the way LinkedTransferQueue generalises it in
// java.util.concurrent. The invariant is that between head and tail the
// list is homogeneous — all data or all reservations — because an
// operation appends only when the tail matches its own mode and otherwise
// *matches*: it claims the oldest node of the opposite mode at the head.
//
// A node's item pointer is its state machine, and the claim CAS on it is
// every operation's linearization point:
//
//	reservation:  nil ──fulfil──▶ &value        (taker gets value)
//	              nil ──cancel──▶ cancelled     (taker got ctx error)
//	data:         &value ──take──▶ taken        (sync putter released)
//	              &value ──cancel─▶ cancelled   (sync putter got ctx error)
//
// Head advances (and the old dummy is retired) only past nodes whose item
// has left its initial state, so a claimed or cancelled node is unlinked
// by whoever passes next — matchers help remove each other's leftovers.

// awaitSpins is the spin budget a waiter burns on its node's item before
// allocating a permit and parking. Rendezvous waits are usually shorter
// than a park/unpark round trip, which is the whole point of the budget.
const awaitSpins = 128

// xitem boxes a transferred value. The padding byte forces a non-zero
// size so every allocation — including the per-queue taken/cancelled
// sentinels — has a distinct address even when T itself is zero-size
// (Go gives all zero-size allocations one address, which would collapse
// the item state machine for types like struct{}).
type xitem[T any] struct {
	v T
	_ byte
}

type node[T any] struct {
	isData bool
	// sync marks a data node whose putter waits for consumption (the
	// synchronous queue); claiming it counts as a fulfilment.
	sync   bool
	item   atomic.Pointer[xitem[T]]
	waiter atomic.Pointer[park.Permit]
	next   atomic.Pointer[node[T]]
}

// wake releases the node's parked waiter, if one has been installed. It
// must only be called after the item CAS that settles the node: the
// install/recheck order in await guarantees a waiter that misses the
// permit load here has not parked yet and will see the settled item.
func (n *node[T]) wake() {
	if p := n.waiter.Load(); p != nil {
		p.Unpark()
	}
}

// stats counts the slow-path events behind a structure's Stats snapshot.
type stats struct {
	reservations atomic.Int64
	fulfilled    atomic.Int64
	parks        atomic.Int64
	cancelled    atomic.Int64
	handoffs     atomic.Int64
}

// Stats is a point-in-time snapshot of a blocking structure's
// waiter-management counters. The S15 benchmark scenarios surface it as
// record gauges.
type Stats struct {
	// Reservations counts operations that installed a waiting node (a
	// Take that found no data, or a synchronous Put that found no taker).
	Reservations int64
	// Fulfilled counts reservations completed by a later inverse
	// operation through the transfer list.
	Fulfilled int64
	// Parks counts waits that actually blocked on a permit; the
	// difference against Reservations is the spin-resolved fraction.
	Parks int64
	// Cancelled counts reservations withdrawn by context cancellation.
	Cancelled int64
	// Handoffs counts fast-path rendezvous through the handoff array
	// (Sync only; zero elsewhere).
	Handoffs int64
}

func (s *stats) snapshot() Stats {
	return Stats{
		Reservations: s.reservations.Load(),
		Fulfilled:    s.fulfilled.Load(),
		Parks:        s.parks.Load(),
		Cancelled:    s.cancelled.Load(),
		Handoffs:     s.handoffs.Load(),
	}
}

// xfer is the shared dual transfer list.
type xfer[T any] struct {
	head atomic.Pointer[node[T]]
	tail atomic.Pointer[node[T]]
	// cancelled and taken are per-queue sentinel addresses, distinct from
	// every real item pointer (and from nil, the unfulfilled state).
	cancelled *xitem[T]
	taken     *xitem[T]
	mem       *reclaim.Pool
	st        stats
}

func newXfer[T any](dom reclaim.Domain) *xfer[T] {
	q := &xfer[T]{cancelled: new(xitem[T]), taken: new(xitem[T])}
	if dom != nil && dom.Deferred() {
		q.mem = reclaim.NewPool(dom, 2)
	}
	dummy := &node[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// guard obtains a reclamation guard with an open section, or nil when the
// queue runs on the default GC path.
func (q *xfer[T]) guard() reclaim.Guard {
	if q.mem == nil {
		return nil
	}
	g := q.mem.Get()
	g.Enter()
	return g
}

func (q *xfer[T]) release(g reclaim.Guard) {
	if g != nil {
		g.Exit()
		q.mem.Put(g)
	}
}

// loadHead reads the head under g's slot-0 hazard (a plain load under
// EBR/GC).
func (q *xfer[T]) loadHead(g reclaim.Guard) *node[T] {
	if g == nil {
		return q.head.Load()
	}
	return reclaim.Load(g, 0, &q.head)
}

// pinNext publishes next in slot 1 and re-checks that h is still the
// head. Nodes are never recycled, so an unchanged head proves the pair
// (h, next) was reachable — and the publication in time — for the whole
// window (no ABA on the head pointer without reuse).
func (q *xfer[T]) pinNext(g reclaim.Guard, h, next *node[T]) bool {
	if g != nil && g.Protects() {
		g.Protect(1, next)
	}
	return q.head.Load() == h
}

// advanceHead swings the head past next and retires the old dummy. Any
// matcher may call it on a settled node; only the winner retires.
func (q *xfer[T]) advanceHead(g reclaim.Guard, h, next *node[T]) {
	if q.head.CompareAndSwap(h, next) {
		if g != nil {
			reclaim.Retire[node[T]](g, nil, h)
		}
	}
}

// put transfers v into the queue. With wait=false it returns as soon as
// the value is enqueued or handed to a reservation (the total Enqueue of
// the dual queue); with wait=true it blocks until a taker has consumed
// the value (the synchronous-queue Put), returning ctx's error if
// cancelled first.
func (q *xfer[T]) put(ctx context.Context, v T, wait bool) error {
	pv := &xitem[T]{v: v}
	var n *node[T]
	var b contend.Backoff
	g := q.guard()
	defer q.release(g)
	for {
		h := q.loadHead(g)
		t := q.tail.Load()
		if h == t || t.isData {
			// Empty or data mode: append a data node.
			next := t.next.Load()
			if t != q.tail.Load() {
				continue
			}
			if next != nil {
				q.tail.CompareAndSwap(t, next) // help a lagging tail
				continue
			}
			if n == nil {
				n = &node[T]{isData: true, sync: wait}
				n.item.Store(pv)
			}
			if t.next.CompareAndSwap(nil, n) {
				q.tail.CompareAndSwap(t, n)
				if !wait {
					return nil
				}
				q.st.reservations.Add(1)
				// Never hold a reclamation section while parked: a
				// pinned epoch would stall the whole domain.
				if g != nil {
					g.Exit()
				}
				_, err := q.await(ctx, n, pv)
				if g != nil {
					g.Enter()
				}
				return err
			}
			b.Pause()
			continue
		}
		// Reservation mode: fulfil the oldest waiting taker.
		next := h.next.Load()
		if !q.pinNext(g, h, next) {
			continue
		}
		if next == nil {
			continue // stale view of a just-emptied queue
		}
		if next.item.Load() == nil && next.item.CompareAndSwap(nil, pv) {
			q.advanceHead(g, h, next)
			q.st.fulfilled.Add(1)
			next.wake()
			return nil
		}
		// Cancelled (or concurrently fulfilled) reservation: unlink and
		// retry with the next one.
		q.advanceHead(g, h, next)
		b.Pause()
	}
}

// take transfers a value out of the queue, blocking on a reservation node
// if none is ready. It returns ctx's error if cancelled before a value
// arrives.
func (q *xfer[T]) take(ctx context.Context) (v T, err error) {
	var r *node[T]
	var b contend.Backoff
	g := q.guard()
	defer q.release(g)
	for {
		h := q.loadHead(g)
		t := q.tail.Load()
		if h == t || !t.isData {
			// Empty or reservation mode: append our reservation.
			next := t.next.Load()
			if t != q.tail.Load() {
				continue
			}
			if next != nil {
				q.tail.CompareAndSwap(t, next)
				continue
			}
			if r == nil {
				r = &node[T]{}
			}
			if t.next.CompareAndSwap(nil, r) {
				q.tail.CompareAndSwap(t, r)
				q.st.reservations.Add(1)
				if g != nil {
					g.Exit()
				}
				pv, err := q.await(ctx, r, nil)
				if g != nil {
					g.Enter()
				}
				if err != nil {
					return v, err
				}
				return pv.v, nil
			}
			b.Pause()
			continue
		}
		// Data mode: claim the oldest value.
		next := h.next.Load()
		if !q.pinNext(g, h, next) {
			continue
		}
		if next == nil {
			continue
		}
		pv := next.item.Load()
		if pv == q.taken || pv == q.cancelled {
			q.advanceHead(g, h, next) // help unlink a settled node
			continue
		}
		if next.item.CompareAndSwap(pv, q.taken) {
			q.advanceHead(g, h, next)
			if next.sync {
				q.st.fulfilled.Add(1)
				next.wake() // release the waiting synchronous putter
			}
			return pv.v, nil
		}
		b.Pause()
	}
}

// tryPut fulfils a waiting reservation with v without ever appending; it
// reports false when no taker is waiting. This is the dual queue's
// nonblocking "offer to a waiter" and the synchronous queue's
// waiter-priority fast path.
func (q *xfer[T]) tryPut(v T) bool {
	pv := &xitem[T]{v: v}
	g := q.guard()
	defer q.release(g)
	for {
		h := q.loadHead(g)
		t := q.tail.Load()
		if h == t || t.isData {
			return false
		}
		next := h.next.Load()
		if !q.pinNext(g, h, next) {
			continue
		}
		if next == nil {
			continue
		}
		if next.item.Load() == nil && next.item.CompareAndSwap(nil, pv) {
			q.advanceHead(g, h, next)
			q.st.fulfilled.Add(1)
			next.wake()
			return true
		}
		q.advanceHead(g, h, next)
	}
}

// tryTake claims a ready value without ever appending a reservation; ok
// is false when no data is waiting.
func (q *xfer[T]) tryTake() (v T, ok bool) {
	g := q.guard()
	defer q.release(g)
	for {
		h := q.loadHead(g)
		t := q.tail.Load()
		if h == t || !t.isData {
			return v, false
		}
		next := h.next.Load()
		if !q.pinNext(g, h, next) {
			continue
		}
		if next == nil {
			continue
		}
		pv := next.item.Load()
		if pv == q.taken || pv == q.cancelled {
			q.advanceHead(g, h, next)
			continue
		}
		if next.item.CompareAndSwap(pv, q.taken) {
			q.advanceHead(g, h, next)
			if next.sync {
				q.st.fulfilled.Add(1)
				next.wake()
			}
			return pv.v, true
		}
	}
}

// await blocks until n's item leaves expect — fulfilment for a
// reservation (expect nil), consumption for a synchronous put (expect the
// value pointer) — spinning awaitSpins times before parking. On ctx
// expiry it withdraws the node by CASing item from expect to the
// cancelled sentinel; losing that CAS means the operation completed
// concurrently, which wins over the cancellation.
func (q *xfer[T]) await(ctx context.Context, n *node[T], expect *xitem[T]) (*xitem[T], error) {
	for i := 0; i < awaitSpins; i++ {
		if it := n.item.Load(); it != expect {
			return it, nil
		}
		runtime.Gosched()
	}
	p := park.New()
	n.waiter.Store(p)
	for {
		// Re-check after installing the permit: a fulfiller that loaded
		// the waiter slot before our store has already settled the item.
		if it := n.item.Load(); it != expect {
			return it, nil
		}
		q.st.parks.Add(1)
		if err := p.Park(ctx); err == nil {
			continue // token implies a settled item; loop exits above
		} else if n.item.CompareAndSwap(expect, q.cancelled) {
			q.st.cancelled.Add(1)
			return nil, err
		} else {
			// Settled between ctx expiry and our withdrawal: completed.
			return n.item.Load(), nil
		}
	}
}

// len counts ready data nodes by traversing from the head; reservations
// (and settled nodes awaiting unlink) count zero. Exact only in quiescent
// states, like every Len in this module.
func (q *xfer[T]) len() int {
	n := 0
	for nd := q.head.Load().next.Load(); nd != nil; nd = nd.next.Load() {
		if nd.isData {
			if it := nd.item.Load(); it != nil && it != q.taken && it != q.cancelled {
				n++
			}
		}
	}
	return n
}
