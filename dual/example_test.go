package dual_test

import (
	"context"
	"fmt"
	"time"

	"github.com/cds-suite/cds/dual"
)

// A blocking Take waits for data instead of failing — and a context
// cancels the wait, withdrawing the reservation so later enqueues are not
// swallowed by an abandoned taker.
func ExampleMSQueue_Take_cancellation() {
	q := dual.NewMSQueue[string]()

	// No producer yet: this Take gives up after its deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := q.Take(ctx); err != nil {
		fmt.Println("first take:", err)
	}

	// A value enqueued after the cancellation is delivered to the next
	// taker, not to the withdrawn reservation.
	q.Enqueue("payload")
	v, err := q.Take(context.Background())
	fmt.Println("second take:", v, err)
	// Output:
	// first take: context deadline exceeded
	// second take: payload <nil>
}

// A synchronous queue has no buffer: Put and Take complete together, one
// pair per rendezvous — a channel built from the module's own parts.
func ExampleSync() {
	s := dual.NewSync[int](0, 0)

	results := make(chan string, 2)
	go func() {
		// Blocks until the Take below meets it.
		if err := s.Put(context.Background(), 42); err == nil {
			results <- "put delivered"
		}
	}()
	go func() {
		v, _ := s.Take(context.Background())
		results <- fmt.Sprintf("take got %d", v)
	}()

	a, b := <-results, <-results
	// Both halves completed; order of the reports is scheduling noise.
	if a > b {
		a, b = b, a
	}
	fmt.Println(a)
	fmt.Println(b)
	// Output:
	// put delivered
	// take got 42
}

// Bounded turns the MPMC ring into a backpressure primitive: producers
// block when consumers fall behind, instead of dropping or growing.
func ExampleBounded() {
	q := dual.NewBounded[int](2)
	ctx := context.Background()

	for i := 1; i <= 2; i++ {
		_ = q.Put(ctx, i) // fits in capacity
	}
	go func() {
		_ = q.Put(ctx, 3) // blocks until the first Take drains a slot
	}()

	for i := 0; i < 3; i++ {
		v, _ := q.Take(ctx)
		fmt.Println(v)
	}
	// Output:
	// 1
	// 2
	// 3
}
