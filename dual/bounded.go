package dual

import (
	"context"
	"runtime"

	"github.com/cds-suite/cds/internal/park"
	"github.com/cds-suite/cds/queue"
)

// boundedSpins is the spin budget a blocked Put/Take burns on the ring
// before enrolling as a waiter: under producer–consumer workloads the
// complementary operation usually arrives within a few scheduler quanta.
const boundedSpins = 32

// Bounded is a capacity-bounded blocking MPMC queue: queue.MPMC (the
// Vyukov-style ring) for the data path, with not-empty/not-full waiter
// sets (park.Lot) turning the ring's failing TryEnqueue/TryDequeue into
// the blocking Put/Take partial operations — the classic bounded buffer
// with parking instead of condition-variable broadcast storms: each
// completed operation wakes at most one waiter on the opposite side.
//
// The waiter protocol is enrol → re-check → park: a waiter that finds the
// ring usable after enrolling withdraws (forwarding any wakeup it may
// have consumed), so no wakeup is lost and no lock is held around ring
// operations. Wakeups are FIFO over enrolment, but a concurrently
// arriving non-waiting operation can overtake a waking waiter (the ring
// itself arbitrates), so Bounded is not strictly fair.
//
// Progress: blocking — waiter management takes a small lock, and the
// ring is itself "practically nonblocking" (see queue.MPMC). The fast
// path (no wait needed) is one ring operation plus one empty wake probe.
type Bounded[T any] struct {
	ring     *queue.MPMC[T]
	notEmpty park.Lot
	notFull  park.Lot
	st       stats
}

// NewBounded returns an empty bounded blocking queue with the given
// capacity, rounded up to a power of two (minimum 2) by the underlying
// ring.
func NewBounded[T any](capacity int) *Bounded[T] {
	return &Bounded[T]{ring: queue.NewMPMC[T](capacity)}
}

// Put adds v at the tail, blocking while the queue is full. It returns
// ctx's error if cancelled first.
func (q *Bounded[T]) Put(ctx context.Context, v T) error {
	err := q.wait(ctx, &q.notFull, func() bool { return q.ring.TryEnqueue(v) })
	if err == nil {
		q.notEmpty.WakeOne()
	}
	return err
}

// Take removes and returns the head element, blocking while the queue is
// empty. It returns ctx's error if cancelled first.
func (q *Bounded[T]) Take(ctx context.Context) (v T, err error) {
	err = q.wait(ctx, &q.notEmpty, func() (ok bool) {
		v, ok = q.ring.TryDequeue()
		return ok
	})
	if err == nil {
		q.notFull.WakeOne()
	}
	return v, err
}

// wait runs try until it succeeds, parking on lot between attempts.
func (q *Bounded[T]) wait(ctx context.Context, lot *park.Lot, try func() bool) error {
	for i := 0; i < boundedSpins; i++ {
		if try() {
			return nil
		}
		runtime.Gosched()
	}
	for {
		if try() {
			return nil
		}
		if err := ctx.Err(); err != nil {
			q.st.cancelled.Add(1)
			return err
		}
		p := park.New()
		lot.Enroll(p)
		q.st.reservations.Add(1)
		// Re-check after enrolling: a waker that ran before our enrolment
		// has not seen us, so this closes the lost-wakeup window.
		if try() {
			if !lot.Withdraw(p) {
				lot.WakeOne() // consumed a wakeup along with the slot: pass it on
			}
			return nil
		}
		q.st.parks.Add(1)
		err := p.Park(ctx)
		removed := lot.Withdraw(p)
		if err != nil {
			if !removed {
				lot.WakeOne() // our wakeup is in flight: forward it
			}
			q.st.cancelled.Add(1)
			return err
		}
		if !removed {
			q.st.fulfilled.Add(1) // a waker picked us and the token arrived
		}
	}
}

// TryEnqueue adds v without waiting; it reports false if the queue was
// full.
func (q *Bounded[T]) TryEnqueue(v T) bool {
	if q.ring.TryEnqueue(v) {
		q.notEmpty.WakeOne()
		return true
	}
	return false
}

// TryDequeue removes and returns the head element without waiting; ok is
// false if the queue was empty.
func (q *Bounded[T]) TryDequeue() (v T, ok bool) {
	if v, ok = q.ring.TryDequeue(); ok {
		q.notFull.WakeOne()
		return v, true
	}
	return v, false
}

// Cap reports the fixed capacity.
func (q *Bounded[T]) Cap() int { return q.ring.Cap() }

// Len reports the number of buffered elements (see queue.MPMC.Len).
func (q *Bounded[T]) Len() int { return q.ring.Len() }

// Stats snapshots the waiter-management counters. Reservations counts
// enrolments, Parks actual blocks, Fulfilled parks ended by a wakeup,
// Cancelled waits abandoned on context expiry.
func (q *Bounded[T]) Stats() Stats { return q.st.snapshot() }
