package dual

import "context"

// MSQueue is the Scherer–Scott dual Michael–Scott queue (DISC 2004): an
// unbounded FIFO queue whose dequeue is a partial operation. Enqueue is
// total and never blocks. Take on a non-empty queue dequeues immediately;
// Take on an empty queue appends a *reservation* node to the same linked
// list the data travels on and waits (spin-then-park) until a later
// Enqueue fulfils it. Because reservations queue up in arrival order and
// enqueues always fulfil the one at the head, blocked takers are served
// in strict FIFO order — the fairness property that distinguishes the
// dualqueue from retry loops over a try-dequeue.
//
// Linearization points: Enqueue at its append CAS (or, when fulfilling,
// at the successful item CAS on the head reservation); a successful Take
// at its claim CAS (immediate) or at its reservation's fulfilment CAS
// (blocked); a cancelled Take at its withdrawal CAS, which is legal only
// while the reservation is unfulfilled and therefore witnesses an empty
// queue — so a timed-out Take linearizes as a failed TryDequeue.
//
// Progress: every CAS retry implies another operation completed, so the
// queue itself is lock-free; a parked taker's wakeup depends on its
// fulfiller, as in all dual structures.
type MSQueue[T any] struct {
	x *xfer[T]
}

// NewMSQueue returns an empty dual queue. See WithReclaim for the
// memory-reclamation option.
func NewMSQueue[T any](opts ...Option) *MSQueue[T] {
	return &MSQueue[T]{x: newXfer[T](buildOptions(opts).dom)}
}

// Enqueue adds v at the tail, fulfilling the oldest waiting Take if one
// is parked. It never blocks.
func (q *MSQueue[T]) Enqueue(v T) {
	// context.Background: the unbounded enqueue has no blocking phase, so
	// cancellation never applies and the error is always nil.
	_ = q.x.put(context.Background(), v, false)
}

// Put is Enqueue under the cds.BlockingQueue contract; on an unbounded
// queue it always succeeds immediately and the error is always nil.
func (q *MSQueue[T]) Put(_ context.Context, v T) error {
	q.Enqueue(v)
	return nil
}

// Take removes and returns the head element, blocking while the queue is
// empty. It returns ctx's error if cancelled before a value arrives; the
// abandoned reservation is withdrawn and skipped by later enqueues.
func (q *MSQueue[T]) Take(ctx context.Context) (T, error) {
	return q.x.take(ctx)
}

// TryDequeue removes and returns the head element without ever waiting;
// ok is false if no data was ready (even if takers are parked).
func (q *MSQueue[T]) TryDequeue() (v T, ok bool) {
	return q.x.tryTake()
}

// Len counts ready (unclaimed data) elements; parked reservations count
// as zero. Best-effort under concurrency, like every Len in this module.
func (q *MSQueue[T]) Len() int { return q.x.len() }

// Stats snapshots the waiter-management counters.
func (q *MSQueue[T]) Stats() Stats { return q.x.st.snapshot() }
