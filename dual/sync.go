package dual

import (
	"context"

	"github.com/cds-suite/cds/contend"
)

// Sync is a synchronous queue — a rendezvous channel in the sense of the
// survey's pools discussion and of java.util.concurrent's
// SynchronousQueue: it has no capacity, so every Put blocks until a Take
// consumes its value and every Take blocks until a Put supplies one.
//
// The implementation layers two mechanisms:
//
//   - Fast path: a contend.HandoffArray. A putter publishes its value in
//     a randomized handoff slot for a bounded spin window; a taker scans
//     the bank and claims it. Near-simultaneous arrivals pair here
//     without parking or touching shared list state — the elimination
//     insight applied to a structure that is *all* rendezvous.
//   - Slow path: the dual transfer list shared with MSQueue, with both
//     sides waiting: an unmatched Put parks on a data node, an unmatched
//     Take parks on a reservation node.
//
// Parked waiters take priority over the fast path: both operations first
// probe the transfer list for an opposite-mode waiter (tryPut/tryTake)
// before attempting a handoff, so spinning newcomers cannot starve parked
// ones indefinitely. Pairing is nevertheless not globally FIFO across
// both paths (the classic fair/unfair synchronous-queue trade-off);
// waiters among themselves are served in arrival order.
//
// Progress: rendezvous requires a partner by definition, so both
// operations are blocking; all internal steps between pairings are
// nonblocking.
type Sync[T any] struct {
	fast *contend.HandoffArray[T]
	x    *xfer[T]
}

// NewSync returns a synchronous queue. width and spins size the handoff
// fast path (values <= 0 select the contend defaults); see WithReclaim
// for the memory-reclamation option on the slow path.
func NewSync[T any](width, spins int, opts ...Option) *Sync[T] {
	return &Sync[T]{
		fast: contend.NewHandoffArray[T](width, spins),
		x:    newXfer[T](buildOptions(opts).dom),
	}
}

// Put transfers v to a taker, blocking until one accepts it. It returns
// ctx's error if cancelled first.
func (s *Sync[T]) Put(ctx context.Context, v T) error {
	if s.x.tryPut(v) {
		return nil // a parked taker was waiting: served first
	}
	if s.fast.TryGive(v) {
		s.x.st.handoffs.Add(1)
		return nil
	}
	return s.x.put(ctx, v, true)
}

// Take receives a value from a putter, blocking until one arrives. It
// returns ctx's error if cancelled first.
func (s *Sync[T]) Take(ctx context.Context) (v T, err error) {
	if v, ok := s.x.tryTake(); ok {
		return v, nil // a parked putter was waiting: served first
	}
	// The giver side counts the handoff, so the gauge records each
	// rendezvous once.
	if v, ok := s.fast.TryTake(nil); ok {
		return v, nil
	}
	return s.x.take(ctx)
}

// Len reports the number of parked putters' values not yet consumed. A
// synchronous queue holds no buffered elements, so this is 0 whenever no
// putter is blocked.
func (s *Sync[T]) Len() int { return s.x.len() }

// Stats snapshots the waiter-management counters; Handoffs counts
// fast-path rendezvous.
func (s *Sync[T]) Stats() Stats { return s.x.st.snapshot() }
