package contend

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
	"github.com/cds-suite/cds/internal/xrand"
)

// Handoff states. An offer moves waiting → {claimed, withdrawn}, and a
// claimed offer moves → {taken, aborted}. Terminal states release the
// giver.
const (
	handoffWaiting uint32 = iota
	handoffClaimed
	handoffTaken
	handoffAborted
	handoffWithdrawn
)

// Handoff is a single-slot, single-direction rendezvous with taker-side
// validation: a giver publishes a value, and a taker may claim it, check an
// arbitrary condition while the giver is pinned, and then either consume
// the value or abort the handoff.
//
// The validation step is what distinguishes Handoff from Exchanger, and it
// is exactly what FIFO elimination needs (Moir, Nussbaum, Shalev & Shavit,
// SPAA 2005): an enqueue and a dequeue may cancel only while the queue is
// empty, so the dequeuer must re-verify emptiness between claiming the
// offer and committing to it. A symmetric exchanger cannot express that —
// once its claim CAS succeeds the exchange is irrevocable.
//
// Progress: lock-free for takers (one CAS, a validation callback, one
// store). A giver whose offer is claimed spins until the taker's decision,
// which is bounded by the validation callback.
type Handoff[T any] struct {
	slot atomic.Pointer[handoffOffer[T]]
}

type handoffOffer[T any] struct {
	value T
	state atomic.Uint32
}

// TryGive publishes v and waits up to spins polling iterations for a taker.
// It reports whether the value was consumed; on false the caller retries
// its operation on the main structure (the offer was withdrawn, aborted by
// a failed validation, or the slot was busy).
func (h *Handoff[T]) TryGive(v T, spins int) bool {
	of := &handoffOffer[T]{value: v}
	if !h.slot.CompareAndSwap(nil, of) {
		return false // slot busy with another giver's offer
	}
	for i := 0; i < spins; i++ {
		if of.state.Load() != handoffWaiting {
			return h.settle(of)
		}
	}
	// Timed out. Winning the withdrawal CAS fences takers off; the offer is
	// then ours to unlink. Losing it means a taker claimed concurrently.
	if of.state.CompareAndSwap(handoffWaiting, handoffWithdrawn) {
		h.slot.CompareAndSwap(of, nil)
		return false
	}
	return h.settle(of)
}

// settle waits out a taker that has claimed the offer: its validation is a
// handful of instructions away from a terminal state.
func (h *Handoff[T]) settle(of *handoffOffer[T]) bool {
	for {
		switch of.state.Load() {
		case handoffTaken:
			return true
		case handoffAborted:
			return false
		default:
			runtime.Gosched()
		}
	}
}

// takeResult reports how a take attempt ended: no claimable offer, value
// consumed, or claim aborted by a failed validation.
type takeResult uint8

const (
	takeNone takeResult = iota
	takeTaken
	takeAborted
)

// TryTake claims a waiting offer, runs validate while the giver is pinned,
// and consumes the value if validate reports true (nil validates trivially).
// On a false validation the handoff is aborted and the giver retries.
func (h *Handoff[T]) TryTake(validate func() bool) (v T, ok bool) {
	v, res := h.take(validate)
	return v, res == takeTaken
}

func (h *Handoff[T]) take(validate func() bool) (v T, res takeResult) {
	of := h.slot.Load()
	if of == nil || !of.state.CompareAndSwap(handoffWaiting, handoffClaimed) {
		return v, takeNone
	}
	if validate == nil || validate() {
		v = of.value
		of.state.Store(handoffTaken)
		h.slot.CompareAndSwap(of, nil)
		return v, takeTaken
	}
	of.state.Store(handoffAborted)
	h.slot.CompareAndSwap(of, nil)
	return v, takeAborted
}

// HandoffArray spreads givers over a bank of cache-line-padded Handoff
// slots; takers scan the whole bank from a random start. Give-side
// randomization diffuses contention; take-side scanning keeps the hit rate
// high when offers are sparse (the empty-structure regime where validated
// handoffs apply).
type HandoffArray[T any] struct {
	slots []pad.Padded[Handoff[T]]
	spins int
	rngs  sync.Pool
}

// NewHandoffArray returns a handoff array with the given width and
// per-offer spin budget. width <= 0 selects 8; spins <= 0 selects 128.
func NewHandoffArray[T any](width, spins int) *HandoffArray[T] {
	if width <= 0 {
		width = 8
	}
	if spins <= 0 {
		spins = 128
	}
	a := &HandoffArray[T]{
		slots: make([]pad.Padded[Handoff[T]], width),
		spins: spins,
	}
	var seed atomic.Uint64
	a.rngs.New = func() any {
		return xrand.New(seed.Add(1)*0x9e3779b97f4a7c15 + 1)
	}
	return a
}

// TryGive offers v on a random slot for the array's spin budget.
func (a *HandoffArray[T]) TryGive(v T) bool {
	rng := a.rngs.Get().(*xrand.Rand)
	idx := rng.Intn(len(a.slots))
	a.rngs.Put(rng)
	return a.slots[idx].Value.TryGive(v, a.spins)
}

// TryTake scans all slots from a random start for a waiting offer,
// applying validate (see Handoff.TryTake) to the first claimable one.
// It does not wait: with no pending offers it returns immediately, and it
// stops scanning after the first failed validation (the condition will not
// come back mid-scan, and claiming further offers would only abort them).
func (a *HandoffArray[T]) TryTake(validate func() bool) (v T, ok bool) {
	rng := a.rngs.Get().(*xrand.Rand)
	start := rng.Intn(len(a.slots))
	a.rngs.Put(rng)
	for i := 0; i < len(a.slots); i++ {
		switch v, res := a.slots[(start+i)%len(a.slots)].Value.take(validate); res {
		case takeTaken:
			return v, true
		case takeAborted:
			return v, false
		}
	}
	return v, false
}
