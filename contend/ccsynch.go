package contend

import (
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
)

// Node states shared by the CCSynch and DSMSynch handoff lists. A node
// starts pending; the combiner marks it done after applying its operation,
// or combine to pass the combiner role to whoever owns (or will own) it.
const (
	nodePending uint32 = iota
	nodeDone
	nodeCombine
)

// combineBound caps how many operations one combiner applies before
// handing the role to the next waiter in line. The bound trades cache
// affinity (long batches keep the structure resident with one thread)
// against fairness (the last waiter of a long list would otherwise starve
// behind every operation submitted after it). Fatourou & Kallimanis use a
// small multiple of the thread count; a fixed bound well above any
// plausible GOMAXPROCS keeps the implementation parameter-free.
const combineBound = 512

// CCSynch wraps a sequential structure S with CC-Synch combining
// (Fatourou & Kallimanis, PPoPP 2012): threads swap a fresh node into a
// shared tail pointer, write their operation into the node they received,
// and spin on that node's state word — one cache line per waiter, so the
// waiting traffic never collides the way spinning on a shared flag does.
// The thread whose node carries the combine state serves the list in
// submission order up to combineBound operations, then stores the combine
// state into the first unserved node, handing the role (and the structure's
// warm cache lines) to its waiter.
//
// Published measurements (the Synch framework) show CC-Synch overtaking
// flat combining as core counts grow: the handoff list gives every waiter
// a private spin target and makes service order deterministic, where flat
// combining's shared busy flag and detached list make both contended.
//
// Progress: blocking in the small (a stalled combiner delays its batch) but
// the combiner role moves by local stores, never by lock acquisition, and
// each role holder serves a bounded batch.
type CCSynch[S any] struct {
	seq   S
	tail  atomic.Pointer[ccNode[S]]
	stats delegStats
}

type ccNode[S any] struct {
	apply func(S)
	next  atomic.Pointer[ccNode[S]]
	//cdsvet:ignore padlayout next and state are both touched once per handoff by the combiner; the pad separates distinct waiters' nodes, the boundary the CC-Synch layout needs
	state atomic.Uint32
	// Each waiter spins on its own node's state; padding keeps two
	// waiters' spin targets off one line.
	_ pad.CacheLinePad
}

var _ Delegator[*int] = (*CCSynch[*int])(nil)

// NewCCSynch returns a CCSynch around the given sequential structure.
// After construction the structure must only be accessed through Do.
func NewCCSynch[S any](seq S) *CCSynch[S] {
	c := &CCSynch[S]{seq: seq}
	// The initial tail node carries the combine state: the first thread to
	// swap it out becomes the first combiner.
	dummy := &ccNode[S]{}
	dummy.state.Store(nodeCombine)
	c.tail.Store(dummy)
	return c
}

// Do submits apply and returns after it has executed against the
// structure. Results travel out through the closure's captured variables.
func (c *CCSynch[S]) Do(apply func(S)) {
	// The paper's threads keep a private spare node and adopt the one the
	// swap returns; with a garbage collector the recycling is free, so
	// each Do publishes a fresh node and lets the received one die when
	// its role ends.
	fresh := &ccNode[S]{}
	cur := c.tail.Swap(fresh)
	cur.apply = apply
	cur.next.Store(fresh) // publishes apply to the combiner

	var b Backoff
	for {
		switch cur.state.Load() {
		case nodeDone:
			return
		case nodeCombine:
			c.combine(cur)
			return
		}
		b.Pause()
	}
}

// combine serves the list starting at head (whose operation belongs to the
// caller) and hands the combiner role to the first unserved node.
func (c *CCSynch[S]) combine(head *ccNode[S]) {
	tmp := head
	var served uint64
	for served < combineBound {
		nxt := tmp.next.Load()
		if nxt == nil {
			// tmp is the current tail: an empty node whose operation has
			// not been written yet. Leave it unserved.
			break
		}
		tmp.apply(c.seq)
		tmp.state.Store(nodeDone)
		served++
		tmp = nxt
	}
	// Hand off: tmp is either the empty tail node (its future owner will
	// find the combine state the moment it fills the node in) or, when the
	// bound was hit, a node whose spinning owner now inherits the role and
	// continues the pass with the caches warm.
	handoff := tmp.next.Load() != nil
	tmp.state.Store(nodeCombine)
	c.stats.endBatch(served, handoff)
}

// Stats reports the combining gauges accumulated so far.
func (c *CCSynch[S]) Stats() DelegatorStats { return c.stats.snapshot() }
