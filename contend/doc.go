// Package contend is the shared contention-management layer for the
// concurrent data structures in this module. The survey's central
// performance lesson is that throughput under contention is decided less by
// the container's core algorithm than by how failed synchronization
// attempts are handled, and that three portable techniques cover the
// design space:
//
//   - Backoff: a thread that loses a CAS (or finds a lock held) waits a
//     randomized, exponentially growing interval before retrying, spreading
//     the retry stampede over time. Cheapest, always applicable, but the
//     waiting time is pure loss.
//   - Elimination: operations with inverse semantics (push/pop,
//     enqueue/dequeue-on-empty) meet in a side array and cancel directly,
//     turning the contention itself into useful parallelism. See
//     Exchanger, Elimination and Handoff/HandoffArray.
//   - Combining: threads publish operations and a single temporary
//     combiner applies a whole batch against the sequential structure with
//     warm caches, replacing p contended updates with one cache-resident
//     sweep. See Combiner (flat combining) and CombiningTree.
//
// Every structure family in this module draws these mechanisms from here
// rather than keeping private copies: the spin locks and lock-free
// stack/queue retry loops use Backoff, the elimination stack and the
// elimination-backed Michael–Scott queue use the exchanger/handoff arrays,
// the flat-combining containers (package fc, pqueue.FC, deque.FC) and
// the combining-tree counter build on the combining cores, and the
// synchronous queue (dual.Sync) uses a HandoffArray as its rendezvous
// fast path — near-simultaneous Put/Take pairs cancel there before either
// side pays for parking a waiter.
//
// Choosing between the levers (also summarised in the README): backoff is
// the default when operations cannot cancel or batch; elimination wins for
// symmetric inverse-operation mixes on LIFO-like structures; combining wins
// when operations serialise anyway (queues, heaps, deques at saturation)
// because a single combiner with structure-resident cache lines beats many
// threads bouncing those lines.
package contend
