// Package contend is the shared contention-management layer for the
// concurrent data structures in this module. The survey's central
// performance lesson is that throughput under contention is decided less by
// the container's core algorithm than by how failed synchronization
// attempts are handled, and that three portable techniques cover the
// design space:
//
//   - Backoff: a thread that loses a CAS (or finds a lock held) waits a
//     randomized, exponentially growing interval before retrying, spreading
//     the retry stampede over time. Cheapest, always applicable, but the
//     waiting time is pure loss.
//   - Elimination: operations with inverse semantics (push/pop,
//     enqueue/dequeue-on-empty) meet in a side array and cancel directly,
//     turning the contention itself into useful parallelism. See
//     Exchanger, Elimination and Handoff/HandoffArray.
//   - Combining: threads publish operations and a single temporary
//     combiner applies a whole batch against the sequential structure with
//     warm caches, replacing p contended updates with one cache-resident
//     sweep. See Combiner (flat combining) and CombiningTree.
//
// # Combining backends
//
// Combining itself admits more than one protocol, so the batching engine
// is abstracted behind the Delegator interface: Do(apply) hands an
// operation (a closure over the sequential structure) to whichever thread
// currently holds the combining role, and Stats exposes batch/handoff
// gauges. Three interchangeable backends implement it:
//
//   - Combiner (flat combining, the default; Hendler, Incze, Shavit and
//     Tzafrir): threads CAS-push publication records onto a detached list
//     and one thread claims a busy flag, sweeping the whole list each
//     pass. Records are unordered and scanned in full, but a thread that
//     finds its record already present republishes for free — lowest
//     overhead at modest thread counts and under bursty arrival.
//   - CCSynch (Fatourou and Kallimanis): arriving threads atomically swap
//     a fresh node into a shared tail, forming an ordered FIFO request
//     list. Each waiter spins on its own node, and the combiner serves the
//     list in arrival order up to a bound before handing the role to the
//     next pending waiter. The ordered list means no re-scanning of
//     already-served records, so batches stay full as thread counts grow.
//   - DSMSynch: the NUMA-oriented variant of CC-Synch. A thread writes its
//     operation into its own node before linking it behind the
//     predecessor, so every spin happens on memory the waiting thread
//     itself allocated (thread-local by construction), at the cost of a
//     slightly heavier combiner epilogue.
//
// In the original algorithms each thread reuses a persistent node;
// this port allocates a fresh node per call and lets the garbage
// collector reclaim them, which preserves the protocol while dropping
// the thread-registration requirement.
//
// As a rule of thumb: flat combining wins at low to moderate contention
// (its publication list is cheapest when sweeps are short), while
// CC-Synch/DSM-Synch overtake it at high thread counts where flat
// combining's full-list re-scans and CAS-push contention dominate —
// the FIFO request list keeps per-op cost constant. DSM-Synch is
// preferred over CC-Synch on multi-socket machines where spinning on
// another thread's node means cross-socket traffic. The consumers
// (package fc, pqueue.FC, deque.FC, counter.Combining) take a
// WithBackend option so the choice is per-instance; BackendFlatCombining
// is the zero value and the default everywhere.
//
// Every structure family in this module draws these mechanisms from here
// rather than keeping private copies: the spin locks and lock-free
// stack/queue retry loops use Backoff, the elimination stack and the
// elimination-backed Michael–Scott queue use the exchanger/handoff arrays,
// the flat-combining containers (package fc, pqueue.FC, deque.FC) and
// the combining-tree counter build on the combining cores, and the
// synchronous queue (dual.Sync) uses a HandoffArray as its rendezvous
// fast path — near-simultaneous Put/Take pairs cancel there before either
// side pays for parking a waiter.
//
// Choosing between the levers (also summarised in the README): backoff is
// the default when operations cannot cancel or batch; elimination wins for
// symmetric inverse-operation mixes on LIFO-like structures; combining wins
// when operations serialise anyway (queues, heaps, deques at saturation)
// because a single combiner with structure-resident cache lines beats many
// threads bouncing those lines.
package contend
