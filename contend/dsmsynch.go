package contend

import (
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
)

// DSMSynch wraps a sequential structure S with DSM-Synch combining
// (Fatourou & Kallimanis, PPoPP 2012): the variant of CC-Synch designed
// for machines where remote spinning is expensive (NUMA nodes, distributed
// shared memory). A thread writes its operation into its own node before
// swapping the node into the shared tail, links it behind its predecessor,
// and then spins only on the node it allocated itself — the spin target is
// thread-local memory that no other thread's writes ever pull away, where
// CC-Synch spins on the node inherited from the predecessor.
//
// The price of the thread-local spin is a slightly more involved epilogue:
// when the combiner drains the list it must CAS the tail back to nil, and
// a concurrent swap can force it to wait for the late-linking successor
// before handing off. On a single NUMA domain the two variants are close;
// across domains DSM-Synch's local spinning wins — which is why both are
// offered behind the same Delegator interface.
//
// Progress: blocking in the small (a stalled combiner delays its batch) but
// the combiner role moves by local stores and each holder serves a bounded
// batch.
type DSMSynch[S any] struct {
	seq   S
	tail  atomic.Pointer[dsmNode[S]] // nil when the list is idle
	stats delegStats
}

type dsmNode[S any] struct {
	apply func(S)
	next  atomic.Pointer[dsmNode[S]]
	//cdsvet:ignore padlayout next and state are both touched once per handoff by the combiner; the pad separates distinct waiters' nodes, the boundary the DSM-Synch layout needs
	state atomic.Uint32
	// Each waiter spins on the node it allocated; padding keeps two
	// waiters' spin targets off one line.
	_ pad.CacheLinePad
}

var _ Delegator[*int] = (*DSMSynch[*int])(nil)

// NewDSMSynch returns a DSMSynch around the given sequential structure.
// After construction the structure must only be accessed through Do.
func NewDSMSynch[S any](seq S) *DSMSynch[S] {
	return &DSMSynch[S]{seq: seq}
}

// Do submits apply and returns after it has executed against the
// structure. Results travel out through the closure's captured variables.
func (d *DSMSynch[S]) Do(apply func(S)) {
	// The operation is written into the thread's own node before the node
	// is published, which is what lets the thread spin locally afterwards.
	n := &dsmNode[S]{apply: apply}
	pred := d.tail.Swap(n)
	if pred != nil {
		pred.next.Store(n)
		var b Backoff
		for {
			s := n.state.Load()
			if s == nodeDone {
				return
			}
			if s == nodeCombine {
				break
			}
			b.Pause()
		}
	}
	// Combiner: serve from our own node (its operation is still pending —
	// a handoff marks the node combine instead of applying it).
	tmp := n
	var served uint64
	for {
		tmp.apply(d.seq)
		tmp.state.Store(nodeDone)
		served++
		nxt := tmp.next.Load()
		if nxt == nil || served >= combineBound {
			break
		}
		tmp = nxt
	}
	nxt := tmp.next.Load()
	if nxt == nil {
		// The list looks drained. If the tail still points at the last
		// served node, retire the list; otherwise a successor swapped
		// itself in and is about to link — wait for the link so the role
		// can be handed to it.
		if d.tail.CompareAndSwap(tmp, nil) {
			d.stats.endBatch(served, false)
			return
		}
		var b Backoff
		for {
			if nxt = tmp.next.Load(); nxt != nil {
				break
			}
			b.Pause()
		}
	}
	nxt.state.Store(nodeCombine)
	d.stats.endBatch(served, true)
}

// Stats reports the combining gauges accumulated so far.
func (d *DSMSynch[S]) Stats() DelegatorStats { return d.stats.snapshot() }
