package contend

import (
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/internal/pad"
	"github.com/cds-suite/cds/internal/xrand"
)

// adaptPeriod is the inverse probability that a single visit adjusts the
// active width of an adaptive array. Adjusting on every visit would make
// the width word a contention hot spot of its own; sampling one visit in
// adaptPeriod keeps the feedback loop responsive (a few hundred visits per
// adjustment under load) while the common path stays read-only.
const adaptPeriod = 8

// Elimination is an adaptive elimination array: a bank of Exchangers with
// randomized slot selection, as used by the elimination-backoff stack of
// Hendler, Shavit & Yerushalmi (SPAA 2004). Operations that fail on the
// main structure visit a random slot hoping to meet an inverse operation
// and cancel against it directly.
//
// The array is adaptive in the spirit of the original paper: only a prefix
// of the slots is active, and the prefix width tracks the observed hit
// rate. Successful exchanges widen the prefix (more rendezvous capacity),
// timeouts narrow it (concentrating the surviving traffic so that partners
// actually meet). Width adjustments are sampled (see adaptPeriod) so the
// shared width word is read-mostly.
//
// Slots are cache-line padded: neighbouring exchangers are contended by
// construction, and without padding a hit on slot i would false-share with
// the spin loop on slot i+1.
//
// Progress: lock-free (each visit is a bounded Exchanger.Exchange).
type Elimination[T any] struct {
	slots []pad.Padded[Exchanger[T]]
	spins int

	// active is the width of the slot prefix currently in use, in
	// [1, len(slots)]. pinned freezes it (see PinActiveWidth).
	active atomic.Int32
	pinned atomic.Bool

	// rngs hands per-P PRNG state to visits for slot selection.
	rngs sync.Pool

	// Hit/miss accounting is gated: the visits happen precisely when the
	// main structure is contended, so an unconditional shared counter
	// write per visit would re-create the hot spot the array exists to
	// relieve. The adaptive policy itself needs no counters — it feeds on
	// the sampled per-visit outcome directly.
	statsEnabled atomic.Bool
	hits         atomic.Int64
	misses       atomic.Int64
}

// NewElimination returns an adaptive elimination array with the given
// maximum width and per-visit spin budget. width <= 0 selects 8;
// spins <= 0 selects 128. The array starts one slot wide and adapts.
func NewElimination[T any](width, spins int) *Elimination[T] {
	if width <= 0 {
		width = 8
	}
	if spins <= 0 {
		spins = 128
	}
	e := &Elimination[T]{
		slots: make([]pad.Padded[Exchanger[T]], width),
		spins: spins,
	}
	e.active.Store(1)
	var seed atomic.Uint64
	e.rngs.New = func() any {
		return xrand.New(seed.Add(1) * 0x9e3779b97f4a7c15)
	}
	return e
}

// Exchange performs one elimination visit: it offers v on a random active
// slot and reports the partner's value if an exchange happened within the
// spin budget. Callers pairing inverse operations must still check that
// the partner's operation is compatible with theirs; an incompatible
// exchange simply means both parties retry on the main structure.
func (e *Elimination[T]) Exchange(v T) (T, bool) {
	rng := e.rngs.Get().(*xrand.Rand)
	width := int(e.active.Load())
	idx := 0
	if width > 1 {
		idx = rng.Intn(width)
	}
	adapt := rng.Intn(adaptPeriod) == 0 && !e.pinned.Load()
	e.rngs.Put(rng)

	other, ok := e.slots[idx].Value.Exchange(v, e.spins)
	if ok {
		if adapt && width < len(e.slots) {
			e.active.CompareAndSwap(int32(width), int32(width+1))
		}
	} else if adapt && width > 1 {
		e.active.CompareAndSwap(int32(width), int32(width-1))
	}
	if e.statsEnabled.Load() {
		if ok {
			e.hits.Add(1)
		} else {
			e.misses.Add(1)
		}
	}
	return other, ok
}

// EnableStats turns on hit/miss accounting (a shared atomic write per
// visit; leave off for throughput runs).
func (e *Elimination[T]) EnableStats(on bool) {
	e.statsEnabled.Store(on)
}

// PinActiveWidth fixes the active width at w (clamped to [1, MaxWidth])
// and disables adaptation. Parameter sweeps (the A1/A2 ablations) use it
// to measure a true fixed-width array; production callers normally leave
// the policy adaptive.
func (e *Elimination[T]) PinActiveWidth(w int) {
	if w < 1 {
		w = 1
	}
	if w > len(e.slots) {
		w = len(e.slots)
	}
	e.pinned.Store(true)
	e.active.Store(int32(w))
}

// ActiveWidth reports how many slots the adaptive policy currently uses.
func (e *Elimination[T]) ActiveWidth() int {
	return int(e.active.Load())
}

// MaxWidth reports the array's capacity (the width it was built with).
func (e *Elimination[T]) MaxWidth() int {
	return len(e.slots)
}

// Stats returns the number of completed and timed-out exchanges recorded
// while EnableStats(true) was set. These count rendezvous on the array,
// not semantic eliminations: a push/push meeting counts as a hit here even
// though the caller will retry both operations.
func (e *Elimination[T]) Stats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}
