package contend

import "runtime"

// Defaults for Backoff when constructed via its zero value.
const (
	defaultBackoffMinSpins = 4
	defaultBackoffMaxSpins = 1 << 12
	// spinsBeforeYield bounds how much raw busy-waiting happens before the
	// backoff starts yielding the processor to the Go scheduler. Without
	// yielding, a spinner can occupy the OS thread that the lock holder
	// needs, turning microsecond critical sections into scheduling stalls.
	spinsBeforeYield = 1 << 8
)

// Backoff implements randomized exponential backoff for spin loops. The
// zero value is ready to use. It is not safe for concurrent use; each
// spinning goroutine owns its own Backoff.
//
// Pause busy-waits for a randomized duration that doubles (up to a cap) on
// every call, and yields to the Go scheduler once the duration exceeds a
// threshold. Reset restores the initial duration after a successful
// acquisition, per the classic adaptive-backoff scheme.
type Backoff struct {
	cur  uint32
	rng  uint32
	min  uint32
	max  uint32
	init bool
}

// NewBackoff returns a Backoff bounded by [minSpins, maxSpins] iterations.
// Values of zero select the defaults.
func NewBackoff(minSpins, maxSpins uint32) *Backoff {
	b := &Backoff{min: minSpins, max: maxSpins}
	b.lazyInit()
	return b
}

// Pause waits for the current backoff duration and doubles it, capped at
// the maximum. Long waits yield the processor instead of burning it.
func (b *Backoff) Pause() {
	b.lazyInit()
	// xorshift32 supplies the randomization; deterministic seeds are fine
	// because each goroutine perturbs its own stream.
	b.rng ^= b.rng << 13
	b.rng ^= b.rng >> 17
	b.rng ^= b.rng << 5
	spins := b.rng % b.cur

	if b.cur < b.max {
		b.cur *= 2
	}

	if spins > spinsBeforeYield {
		runtime.Gosched()
		return
	}
	for i := uint32(0); i < spins; i++ {
		cpuRelax()
	}
}

// Reset restores the backoff to its minimum duration. Call it after a
// successful acquisition so the next contention episode starts small.
func (b *Backoff) Reset() {
	b.lazyInit()
	b.cur = b.min
}

func (b *Backoff) lazyInit() {
	if b.init {
		return
	}
	if b.min == 0 {
		b.min = defaultBackoffMinSpins
	}
	if b.max < b.min {
		b.max = defaultBackoffMaxSpins
		if b.max < b.min {
			b.max = b.min
		}
	}
	b.cur = b.min
	if b.rng == 0 {
		b.rng = 0x9e3779b9
	}
	b.init = true
}

// cpuRelax is a single spin-wait iteration. Pure Go has no PAUSE intrinsic;
// a tiny amount of untracked work keeps the loop from being optimised away
// while staying cheap.
//
//go:noinline
func cpuRelax() {
}
