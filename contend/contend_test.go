package contend

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffGrowsAndResets(t *testing.T) {
	b := NewBackoff(4, 64)
	if b.cur != 4 {
		t.Fatalf("initial backoff = %d, want 4", b.cur)
	}
	for i := 0; i < 10; i++ {
		b.Pause()
	}
	if b.cur != 64 {
		t.Fatalf("backoff after pauses = %d, want capped at 64", b.cur)
	}
	b.Reset()
	if b.cur != 4 {
		t.Fatalf("backoff after reset = %d, want 4", b.cur)
	}
}

func TestBackoffZeroValue(t *testing.T) {
	var b Backoff
	b.Pause() // must not panic or divide by zero
	b.Reset()
	b.Pause()
}

func TestExchangerPairsSwap(t *testing.T) {
	e := NewExchanger[int]()
	var wg sync.WaitGroup
	results := make([]int, 2)
	oks := make([]bool, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Generous spin budget: the two goroutines will meet.
			for {
				v, ok := e.Exchange(100+i, 1<<16)
				if ok {
					results[i], oks[i] = v, true
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if !oks[0] || !oks[1] {
		t.Fatal("exchange did not complete on both sides")
	}
	if results[0] != 101 || results[1] != 100 {
		t.Fatalf("exchange results = %v, want [101 100]", results)
	}
}

func TestExchangerTimeout(t *testing.T) {
	e := NewExchanger[int]()
	if _, ok := e.Exchange(1, 4); ok {
		t.Fatal("lonely exchange succeeded")
	}
	// Slot must be withdrawn: a later pair still works.
	done := make(chan int, 1)
	go func() {
		for {
			if v, ok := e.Exchange(7, 1<<16); ok {
				done <- v
				return
			}
		}
	}()
	var got int
	for {
		if v, ok := e.Exchange(9, 1<<16); ok {
			got = v
			break
		}
	}
	if got != 7 || <-done != 9 {
		t.Fatalf("post-timeout exchange broken: got %d, partner %v", got, done)
	}
}

func TestExchangerManyPairs(t *testing.T) {
	// An even number of goroutines all exchanging must pair up perfectly:
	// the multiset of received values equals the multiset of sent values,
	// and nobody receives its own value's partner twice.
	e := NewExchanger[int]()
	const n = 16
	var wg sync.WaitGroup
	received := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				if v, ok := e.Exchange(i, 1<<14); ok {
					received[i] = v
					return
				}
			}
		}(i)
	}
	wg.Wait()
	// Exchange is symmetric: if i received j then j received i.
	for i, v := range received {
		if v < 0 || v >= n {
			t.Fatalf("goroutine %d received out-of-range %d", i, v)
		}
		if received[v] != i {
			t.Fatalf("asymmetric exchange: %d got %d but %d got %d", i, v, v, received[v])
		}
	}
}

func TestEliminationDefaults(t *testing.T) {
	e := NewElimination[int](0, 0)
	if e.MaxWidth() != 8 {
		t.Fatalf("default max width = %d, want 8", e.MaxWidth())
	}
	if e.ActiveWidth() != 1 {
		t.Fatalf("initial active width = %d, want 1", e.ActiveWidth())
	}
}

func TestEliminationExchangesPairUp(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs parallelism for rendezvous traffic")
	}
	e := NewElimination[int](4, 512)
	e.EnableStats(true)
	const n, perG = 8, 200
	var (
		wg   sync.WaitGroup
		sum  atomic.Int64
		hits atomic.Int64
	)
	// Every goroutine contributes its value on a hit; pairs exchange, so the
	// sum of received values over all hits equals the sum of offered values
	// over all hits, and the hit count is even in aggregate.
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if v, ok := e.Exchange(g*perG + i); ok {
					sum.Add(int64(v) - int64(g*perG+i))
					hits.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if hits.Load()%2 != 0 {
		t.Fatalf("odd aggregate hit count %d: an exchange completed on one side only", hits.Load())
	}
	if sum.Load() != 0 {
		t.Fatalf("received-minus-offered sum = %d, want 0 (values must swap pairwise)", sum.Load())
	}
	h, m := e.Stats()
	if h != hits.Load() {
		t.Fatalf("Stats hits = %d, observed %d", h, hits.Load())
	}
	if h+m != n*perG {
		t.Fatalf("Stats visits = %d, want %d", h+m, n*perG)
	}
}

func TestEliminationAdaptsDown(t *testing.T) {
	// A lone visitor always times out, so the active width must collapse
	// to (or stay at) the minimum and never grow.
	e := NewElimination[int](8, 1)
	for i := 0; i < 500; i++ {
		if _, ok := e.Exchange(i); ok {
			t.Fatal("lonely visit reported a partner")
		}
	}
	if w := e.ActiveWidth(); w != 1 {
		t.Fatalf("active width after lonely traffic = %d, want 1", w)
	}
}

func TestEliminationAdaptsUpUnderTraffic(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs parallelism for rendezvous traffic")
	}
	e := NewElimination[int](8, 256)
	e.EnableStats(true)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					e.Exchange(i)
				}
			}
		}(g)
	}
	// Wait for enough hits that the sampled adapt policy has had many
	// chances to widen.
	for {
		if h, _ := e.Stats(); h > 5000 {
			break
		}
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if w := e.ActiveWidth(); w < 1 || w > e.MaxWidth() {
		t.Fatalf("active width %d out of range [1,%d]", w, e.MaxWidth())
	}
	if h, _ := e.Stats(); h == 0 {
		t.Fatal("no hits recorded under paired traffic")
	}
}

func TestHandoffGiveTake(t *testing.T) {
	var h Handoff[int]
	done := make(chan bool, 1)
	go func() {
		for {
			if h.TryGive(42, 1<<16) {
				done <- true
				return
			}
		}
	}()
	var got int
	for {
		if v, ok := h.TryTake(nil); ok {
			got = v
			break
		}
	}
	if got != 42 {
		t.Fatalf("took %d, want 42", got)
	}
	if !<-done {
		t.Fatal("giver did not observe the take")
	}
}

func TestHandoffValidationAborts(t *testing.T) {
	var h Handoff[int]
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Re-offer until a taker consumes the value; aborted and withdrawn
		// offers both surface as false and are retried.
		for !h.TryGive(7, 1<<12) {
		}
	}()
	// Reject the first three claims, then accept. Every abort forces the
	// giver back around its retry loop; the final take must still deliver
	// the value, proving the slot is reusable after aborts.
	aborts := 0
	for {
		v, ok := h.TryTake(func() bool {
			if aborts < 3 {
				aborts++
				return false
			}
			return true
		})
		if ok {
			if v != 7 {
				t.Fatalf("took %d, want 7", v)
			}
			break
		}
	}
	if aborts < 3 {
		t.Fatalf("validation ran %d aborts, want 3 before accepting", aborts)
	}
	<-done
}

func TestHandoffWithdraw(t *testing.T) {
	var h Handoff[int]
	if h.TryGive(1, 2) {
		t.Fatal("lonely give succeeded")
	}
	if h.slot.Load() != nil {
		t.Fatal("withdrawn offer left in the slot")
	}
	if _, ok := h.TryTake(nil); ok {
		t.Fatal("take found a withdrawn offer")
	}
}

func TestHandoffArrayConservation(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs parallelism for handoff traffic")
	}
	a := NewHandoffArray[int](4, 256)
	const givers, perG = 4, 300
	var (
		wg    sync.WaitGroup
		given atomic.Int64
		taken atomic.Int64
		stop  atomic.Bool
	)
	for g := 0; g < givers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if a.TryGive(g*perG + i) {
					given.Add(int64(g*perG + i))
				}
			}
		}(g)
	}
	var takerWg sync.WaitGroup
	for tkr := 0; tkr < 2; tkr++ {
		takerWg.Add(1)
		go func() {
			defer takerWg.Done()
			for !stop.Load() {
				if v, ok := a.TryTake(nil); ok {
					taken.Add(int64(v))
				}
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	takerWg.Wait()
	// Every successfully given value was taken exactly once (and nothing
	// else was): the sums must match.
	if given.Load() != taken.Load() {
		t.Fatalf("given sum %d != taken sum %d", given.Load(), taken.Load())
	}
}

// combineBackends parameterizes the combining correctness suite: every
// backend behind the Delegator interface must pass every test.
var combineBackends = []Backend{BackendFlatCombining, BackendCCSynch, BackendDSMSynch}

func TestCombinerAppliesAllOps(t *testing.T) {
	type seq struct{ n int }
	for _, be := range combineBackends {
		t.Run(be.String(), func(t *testing.T) {
			c := NewDelegator(be, &seq{})
			const workers, perW = 8, 500
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						c.Do(func(s *seq) { s.n++ })
					}
				}()
			}
			wg.Wait()
			var got int
			c.Do(func(s *seq) { got = s.n })
			if got != workers*perW {
				t.Fatalf("combined count = %d, want %d", got, workers*perW)
			}
			st := c.Stats()
			if st.Ops != workers*perW+1 {
				t.Fatalf("Stats.Ops = %d, want %d", st.Ops, workers*perW+1)
			}
			if st.Batches == 0 || st.Batches > st.Ops {
				t.Fatalf("Stats.Batches = %d out of range (1..%d)", st.Batches, st.Ops)
			}
			if st.MaxBatch == 0 || st.MaxBatch > st.Ops {
				t.Fatalf("Stats.MaxBatch = %d out of range (1..%d)", st.MaxBatch, st.Ops)
			}
			if be != BackendFlatCombining && st.MaxBatch > combineBound {
				t.Fatalf("Stats.MaxBatch = %d exceeds the %d batch bound", st.MaxBatch, combineBound)
			}
			if avg := st.AvgBatch(); avg < 1 {
				t.Fatalf("AvgBatch = %v, want >= 1 once ops ran", avg)
			}
		})
	}
}

func TestCombinerPerThreadOrder(t *testing.T) {
	// FIFO service per submitter: a thread's own operations must be applied
	// in submission order even when batched with others.
	type seq struct{ log []int }
	for _, be := range combineBackends {
		t.Run(be.String(), func(t *testing.T) {
			c := NewDelegator(be, &seq{})
			const workers, perW = 4, 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						v := w*perW + i
						c.Do(func(s *seq) { s.log = append(s.log, v) })
					}
				}(w)
			}
			wg.Wait()
			var log []int
			c.Do(func(s *seq) { log = append(log, s.log...) })
			last := make(map[int]int)
			for _, v := range log {
				w, i := v/perW, v%perW
				if prev, seen := last[w]; seen && i < prev {
					t.Fatalf("worker %d op %d applied after op %d", w, i, prev)
				}
				last[w] = v % perW
			}
			if len(log) != workers*perW {
				t.Fatalf("log length = %d, want %d", len(log), workers*perW)
			}
		})
	}
}

func TestDelegatorSingleThreadSequence(t *testing.T) {
	// Uncontended operation: every backend must serve a lone caller
	// directly (CCSynch through the tail dummy's combine state, DSMSynch
	// through the tail-CAS retirement) and keep results ordered.
	type seq struct{ vals []int }
	for _, be := range combineBackends {
		t.Run(be.String(), func(t *testing.T) {
			c := NewDelegator(be, &seq{})
			for i := 0; i < 100; i++ {
				c.Do(func(s *seq) { s.vals = append(s.vals, i) })
			}
			var got []int
			c.Do(func(s *seq) { got = append(got, s.vals...) })
			if len(got) != 100 {
				t.Fatalf("applied %d ops, want 100", len(got))
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("vals[%d] = %d, want %d", i, v, i)
				}
			}
			st := c.Stats()
			if st.Ops != 101 || st.Batches != 101 {
				t.Fatalf("sequential stats = %+v, want 101 ops in 101 batches", st)
			}
			if st.Handoffs != 0 {
				t.Fatalf("sequential run recorded %d handoffs, want 0", st.Handoffs)
			}
		})
	}
}

func TestBackendString(t *testing.T) {
	want := map[Backend]string{
		BackendFlatCombining: "FlatCombining",
		BackendCCSynch:       "CC-Synch",
		BackendDSMSynch:      "DSM-Synch",
	}
	for _, be := range Backends() {
		if be.String() != want[be] {
			t.Fatalf("Backend(%d).String() = %q, want %q", be, be.String(), want[be])
		}
	}
}

// TestCombinerNoLostWakeupUnderBackoff pins the no-lost-wakeup property the
// Backoff-paced wait loop must preserve: a record claimed by a combiner
// that is still mid-batch, and a thread whose own combine pass finished
// before its record was served, must both resolve without external
// prodding. A deliberately slow operation maximises the
// claimed-but-unserved window; the test fails by timeout if any Do never
// returns.
func TestCombinerNoLostWakeupUnderBackoff(t *testing.T) {
	for _, be := range combineBackends {
		t.Run(be.String(), func(t *testing.T) {
			type seq struct{ n int }
			c := NewDelegator(be, &seq{})
			const workers, perW = 8, 40
			done := make(chan struct{})
			go func() {
				defer close(done)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < perW; i++ {
							c.Do(func(s *seq) {
								// A slow batch member: while the combiner
								// grinds through this, other threads' records
								// sit claimed but unserved.
								if s.n%17 == 0 {
									for spin := 0; spin < 1<<12; spin++ {
										_ = spin
									}
								}
								s.n++
							})
						}
					}(w)
				}
				wg.Wait()
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("lost wakeup: workers still blocked in Do after 30s")
			}
			var got int
			c.Do(func(s *seq) { got = s.n })
			if got != workers*perW {
				t.Fatalf("combined count = %d, want %d", got, workers*perW)
			}
		})
	}
}

// TestCCSynchHandoffAtBound drives enough concurrent traffic that at least
// one combining pass should hit the batch bound and hand the role over;
// the gauge assertions are conservative (handoffs may legitimately be zero
// on an unloaded machine) but the count must never exceed batches.
func TestDelegatorHandoffGaugeSane(t *testing.T) {
	type seq struct{ n int }
	for _, be := range combineBackends {
		t.Run(be.String(), func(t *testing.T) {
			c := NewDelegator(be, &seq{})
			const workers, perW = 8, 300
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						c.Do(func(s *seq) { s.n++ })
					}
				}()
			}
			wg.Wait()
			st := c.Stats()
			if be == BackendFlatCombining {
				// FC handoffs are not tied to batches; they count re-waits.
				if st.Handoffs > st.Ops {
					t.Fatalf("handoffs %d > ops %d", st.Handoffs, st.Ops)
				}
				return
			}
			if st.Handoffs > st.Batches {
				t.Fatalf("handoffs %d > batches %d", st.Handoffs, st.Batches)
			}
		})
	}
}

func TestCombiningTreeFetchAddDistinct(t *testing.T) {
	const workers, perWorker = 8, 300
	tree := NewCombiningTree(workers)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		seen = make(map[int64]bool, workers*perWorker)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tree.Handle(w)
			priors := make([]int64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				priors = append(priors, h.FetchAdd(1))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, p := range priors {
				if seen[p] {
					t.Errorf("duplicate FetchAdd prior %d", p)
				}
				seen[p] = true
			}
		}(w)
	}
	wg.Wait()
	if got := tree.Load(); got != workers*perWorker {
		t.Fatalf("Load = %d, want %d", got, workers*perWorker)
	}
}
