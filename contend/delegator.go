package contend

import "sync/atomic"

// Delegator is the combining-backend abstraction: a concurrency wrapper
// around a sequential structure S where threads submit operations and a
// single temporary combiner applies whole batches. Three backends satisfy
// it, differing only in how the pending operations are published and how
// the combiner role moves between threads:
//
//   - Combiner (flat combining, the default everywhere): operations are
//     CAS-pushed onto a detached list; whichever thread wins a busy flag
//     claims the whole list with one swap and applies it.
//   - CCSynch: a swap-based handoff list; each thread spins on the node it
//     received from the swap (one cache line per waiter) and the combiner
//     role is handed along the list at a bounded batch size.
//   - DSMSynch: the NUMA/DSM-friendly variant; each thread spins only on
//     the node it allocated itself, so the spin target is thread-local
//     memory and never migrates between caches.
//
// All three provide the same contract as Combiner.Do: Do returns after
// apply has executed against the structure, and results travel out through
// the closure's captured variables.
type Delegator[S any] interface {
	// Do submits apply and returns after it has executed against the
	// structure.
	Do(apply func(S))
	// Stats reports the backend's combining gauges. Counting is always on;
	// the counters are updated only by combiner threads at batch
	// boundaries, so the cost is amortised over the batch.
	Stats() DelegatorStats
}

// Backend selects a combining backend by name, for consumers that
// construct their sequential structure internally (fc.Queue, pqueue.FC,
// deque.FC, counter.Combining) and expose the choice through a
// WithBackend option. The zero value is flat combining, which keeps the
// pre-backend behavior the default.
type Backend int

const (
	// BackendFlatCombining selects Combiner (flat combining), the default.
	BackendFlatCombining Backend = iota
	// BackendCCSynch selects CCSynch.
	BackendCCSynch
	// BackendDSMSynch selects DSMSynch.
	BackendDSMSynch
)

// String names the backend the way the benchmark matrix labels it.
func (b Backend) String() string {
	switch b {
	case BackendCCSynch:
		return "CC-Synch"
	case BackendDSMSynch:
		return "DSM-Synch"
	default:
		return "FlatCombining"
	}
}

// Backends returns all combining backends in matrix order, for sweeps.
func Backends() []Backend {
	return []Backend{BackendFlatCombining, BackendCCSynch, BackendDSMSynch}
}

// NewDelegator constructs the chosen backend around seq. After
// construction the structure must only be accessed through Do.
func NewDelegator[S any](b Backend, seq S) Delegator[S] {
	switch b {
	case BackendCCSynch:
		return NewCCSynch(seq)
	case BackendDSMSynch:
		return NewDSMSynch(seq)
	default:
		return NewCombiner(seq)
	}
}

// DelegatorStats is a snapshot of a backend's combining gauges. The
// interesting ratio is Ops/Batches (see AvgBatch): combining only pays for
// itself when batches are bigger than one, and batch size growing with the
// thread count is the signature of delegation working.
type DelegatorStats struct {
	// Batches counts combining passes that applied at least one operation.
	Batches uint64
	// Ops counts operations applied across all batches. Every Do call
	// contributes exactly one.
	Ops uint64
	// MaxBatch is the largest number of operations any single pass
	// applied. For CCSynch and DSMSynch it is bounded by the backend's
	// batch bound; flat combining's passes are bounded only by how much
	// piled up while the previous pass ran.
	MaxBatch uint64
	// Handoffs counts passes that ended by delegating pending work to
	// another thread. For CCSynch/DSMSynch this is the bound-hit handoff
	// (the next waiter inherits the combiner role mid-list); for flat
	// combining it counts passes after which the combining thread's own
	// operation was still pending with a predecessor combiner — the
	// analogous "someone else finishes my work" event.
	Handoffs uint64
}

// AvgBatch returns the mean operations per combining pass, 0 before any
// pass completed.
func (s DelegatorStats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Ops) / float64(s.Batches)
}

// delegStats is the shared counter block behind Stats on every backend.
// Only combiner threads touch it, once per pass, so plain atomic adds are
// cheap relative to the batch they account for.
type delegStats struct {
	batches  atomic.Uint64
	ops      atomic.Uint64
	maxBatch atomic.Uint64
	handoffs atomic.Uint64
}

func (d *delegStats) endBatch(served uint64, handoff bool) {
	if served == 0 {
		return
	}
	d.batches.Add(1)
	d.ops.Add(served)
	//cdsvet:ignore spinpace monotonic max update: a failed CAS means another batch raised the bar, so the loop converges in at most a few steps
	for {
		cur := d.maxBatch.Load()
		if served <= cur || d.maxBatch.CompareAndSwap(cur, served) {
			break
		}
	}
	if handoff {
		d.handoffs.Add(1)
	}
}

func (d *delegStats) snapshot() DelegatorStats {
	return DelegatorStats{
		Batches:  d.batches.Load(),
		Ops:      d.ops.Load(),
		MaxBatch: d.maxBatch.Load(),
		Handoffs: d.handoffs.Load(),
	}
}
