package contend

import (
	"sync/atomic"
)

// Combiner wraps a sequential structure S with flat-combining concurrency
// (Hendler, Incze, Shavit & Tzafrir, SPAA 2010): instead of every thread
// fighting for the lock of a shared structure, threads publish their
// operations into a lock-free list and a single temporary "combiner"
// applies a whole batch against the plain sequential structure.
//
// The counter-intuitive result the paper established is that one thread
// applying k operations back-to-back against warm caches often beats k
// threads applying one operation each through a contended lock or CAS,
// because the structure's cache lines stay resident with the combiner.
//
// This implementation uses the detached-publication-list variant (as in
// Oyama et al.'s delegation scheme): each operation publishes a fresh
// record, and the combiner claims the whole pending list with one atomic
// swap. It keeps every property that matters (batching, single-writer
// cache affinity) while avoiding the record lifecycle management of the
// original.
//
// S is typically a pointer to an unsynchronised container; Do submits a
// closure that the (single) combiner thread applies.
//
// Progress: the structure's operations are applied by whichever thread
// holds the combiner role; waiting threads spin until their record is
// served. Lock-free in aggregate: the combiner role is claimed by CAS and
// held only for a bounded batch.
type Combiner[S any] struct {
	seq   S
	head  atomic.Pointer[record[S]]
	busy  atomic.Bool
	stats delegStats
}

var _ Delegator[*int] = (*Combiner[*int])(nil)

type record[S any] struct {
	apply func(S)
	next  *record[S]
	done  atomic.Bool
}

// NewCombiner returns a Combiner around the given sequential structure.
// After construction the structure must only be accessed through Do.
func NewCombiner[S any](seq S) *Combiner[S] {
	return &Combiner[S]{seq: seq}
}

// Do submits apply and returns after it has executed against the
// structure. Results travel out through the closure's captured variables,
// which are safe to read once Do returns (the combiner's completion store
// synchronises with the caller's observation of it).
func (c *Combiner[S]) Do(apply func(S)) {
	// Both loops use the package's own Backoff pacing — the same
	// spin-wait discipline as the CCSynch/DSMSynch waiters — instead of a
	// bare busy-wait: randomized growth spreads the re-check stampede and
	// the built-in yield threshold keeps a spinner from occupying the OS
	// thread a stalled combiner needs.
	var b Backoff
	r := &record[S]{apply: apply}
	for {
		old := c.head.Load()
		r.next = old
		if c.head.CompareAndSwap(old, r) {
			break
		}
		b.Pause()
	}
	for {
		if r.done.Load() {
			return
		}
		if c.busy.CompareAndSwap(false, true) {
			c.combine()
			c.busy.Store(false)
			if r.done.Load() {
				return
			}
			// Our record was claimed by a previous combiner that has not
			// finished applying it yet; keep waiting. This is flat
			// combining's handoff analog: another thread completes our
			// operation while we ran a pass of our own.
			c.stats.handoffs.Add(1)
		}
		b.Pause()
	}
}

// Stats reports the combining gauges accumulated so far.
func (c *Combiner[S]) Stats() DelegatorStats { return c.stats.snapshot() }

// combine claims the pending list and applies it. Caller holds busy.
// Records are served in submission order (the CAS-push builds a LIFO list,
// so it is reversed first); FIFO service keeps combining fair and makes
// per-thread operation order match submission order.
func (c *Combiner[S]) combine() {
	batch := c.head.Swap(nil)
	if batch == nil {
		return
	}
	var rev *record[S]
	for batch != nil {
		next := batch.next
		batch.next = rev
		rev = batch
		batch = next
	}
	var served uint64
	for r := rev; r != nil; {
		next := r.next // r may be reused/collected once done is set
		r.apply(c.seq)
		r.done.Store(true)
		served++
		r = next
	}
	c.stats.endBatch(served, false)
}
