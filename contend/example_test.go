package contend_test

import (
	"fmt"

	"github.com/cds-suite/cds/contend"
)

// An Exchanger pairs up two goroutines and swaps their values.
func ExampleExchanger() {
	e := contend.NewExchanger[string]()
	done := make(chan string)
	go func() {
		for {
			if v, ok := e.Exchange("from-b", 1<<16); ok {
				done <- v
				return
			}
		}
	}()
	var got string
	for {
		if v, ok := e.Exchange("from-a", 1<<16); ok {
			got = v
			break
		}
	}
	fmt.Println(got, <-done)
	// Output: from-b from-a
}

// A Combiner turns a plain sequential structure into a concurrent one by
// letting one thread apply batches of published operations.
func ExampleCombiner() {
	type counter struct{ n int }
	c := contend.NewCombiner(&counter{})
	c.Do(func(s *counter) { s.n += 2 })
	c.Do(func(s *counter) { s.n *= 10 })
	var got int
	c.Do(func(s *counter) { got = s.n })
	fmt.Println(got)
	// Output: 20
}

// Backoff spreads CAS retries over randomized, exponentially growing
// pauses.
func ExampleBackoff() {
	var b contend.Backoff
	for attempt := 0; attempt < 3; attempt++ {
		// ... a CAS fails here ...
		b.Pause()
	}
	b.Reset() // after a success, start small again
	fmt.Println("done")
	// Output: done
}
