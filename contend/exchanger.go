package contend

import (
	"runtime"
	"sync/atomic"
)

// Exchanger is a lock-free rendezvous point: two goroutines calling
// Exchange within overlapping windows swap values. It is the building block
// of the elimination array (and of java.util.concurrent's Exchanger).
//
// The protocol is asymmetric: the first arriver installs an offer in the
// slot and waits; the second arriver claims the offer with a CAS, deposits
// its own value, and releases the waiter. Either party can time out; a
// waiter withdraws its offer by CASing the slot back to nil, and if that
// CAS fails a partner has already committed, so the exchange completes.
//
// Linearization point: the claimer's successful CAS of the slot.
//
// The zero value is ready to use. Progress: lock-free.
type Exchanger[T any] struct {
	slot atomic.Pointer[offer[T]]
}

type offer[T any] struct {
	mine   T
	theirs T
	// state is 0 while the offer awaits a partner and 1 once the partner
	// has deposited theirs; the store of 1 releases the waiting goroutine.
	state atomic.Uint32
}

// NewExchanger returns a ready Exchanger.
func NewExchanger[T any]() *Exchanger[T] {
	return &Exchanger[T]{}
}

// Exchange offers v for up to spins polling iterations. If a partner
// arrives in time, it returns the partner's value and true; otherwise it
// withdraws and returns false.
func (e *Exchanger[T]) Exchange(v T, spins int) (T, bool) {
	var zero T
	for attempt := 0; attempt <= spins; attempt++ {
		cur := e.slot.Load()
		if cur == nil {
			// Try to become the waiter.
			of := &offer[T]{mine: v}
			if !e.slot.CompareAndSwap(nil, of) {
				continue // raced with another offerer; re-inspect
			}
			for i := attempt; i <= spins; i++ {
				if of.state.Load() == 1 {
					return of.theirs, true
				}
			}
			// Timed out: withdraw. A failed CAS means a partner claimed the
			// offer between our last poll and now — finish the exchange.
			if e.slot.CompareAndSwap(of, nil) {
				return zero, false
			}
			// Partner committed; completion is a handful of its
			// instructions away.
			for of.state.Load() != 1 {
				runtime.Gosched()
			}
			return of.theirs, true
		}
		// An offer is waiting: claim it by emptying the slot, then settle.
		if e.slot.CompareAndSwap(cur, nil) {
			cur.theirs = v
			theirs := cur.mine
			cur.state.Store(1)
			return theirs, true
		}
	}
	return zero, false
}
