package contend

import (
	"fmt"
	"sync"
)

// CombiningTree is a software combining tree (Goodman, Vernon & Woest;
// presented as in Herlihy & Shavit ch. 12) for fetch-and-add on an int64.
// Threads are statically assigned to leaves, two per leaf; when two threads
// meet at a node on their way to the root, one combines both requests and
// carries the sum upward while the other waits for the result to be
// distributed back down. Under saturation the root applies many increments
// per lock acquisition, turning a sequential bottleneck into
// O(p/log p)-ish amortised cost; under low load the tree's per-level
// handshakes make it slower than a plain atomic — the classic combining
// trade-off.
//
// Where the flat Combiner batches opportunistically through one shared
// publication list, the tree pre-shapes the combining pattern: pairs meet
// at fixed rendezvous nodes, which bounds each node's contention at two
// threads regardless of p. Package counter wraps this core as a
// cds.Counter.
//
// Threads interact through per-thread handles obtained from Handle(id).
//
// Progress: blocking (waiting threads park on per-node condition variables).
type CombiningTree struct {
	nodes  []*combiningNode
	leaves []*combiningNode
	width  int
}

type combiningStatus int

const (
	combiningIdle combiningStatus = iota + 1
	combiningFirst
	combiningSecond
	combiningResult
	combiningRoot
)

type combiningNode struct {
	mu     sync.Mutex
	cond   *sync.Cond
	status combiningStatus
	locked bool

	firstVal  int64
	secondVal int64
	result    int64

	parent *combiningNode
}

func newCombiningNode(parent *combiningNode) *combiningNode {
	n := &combiningNode{status: combiningIdle, parent: parent}
	if parent == nil {
		n.status = combiningRoot
	}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// NewCombiningTree returns a combining tree serving the given number of
// threads (handles). width <= 0 panics: the tree shape is fixed at
// construction.
func NewCombiningTree(width int) *CombiningTree {
	if width <= 0 {
		panic(fmt.Sprintf("contend: NewCombiningTree width must be positive, got %d", width))
	}
	leafCount := (width + 1) / 2
	// Complete binary tree with leafCount leaves: levels of parents until 1.
	t := &CombiningTree{width: width}
	root := newCombiningNode(nil)
	t.nodes = []*combiningNode{root}
	level := []*combiningNode{root}
	for len(level) < leafCount {
		var next []*combiningNode
		for _, p := range level {
			l, r := newCombiningNode(p), newCombiningNode(p)
			next = append(next, l, r)
		}
		t.nodes = append(t.nodes, next...)
		level = next
	}
	t.leaves = level
	return t
}

// Width returns the number of thread slots the tree was built for.
func (t *CombiningTree) Width() int { return t.width }

// Handle returns the update handle for thread slot id in [0, Width()). Each
// slot must be used by at most one goroutine at a time; two slots share each
// leaf, which is what creates combining opportunities.
func (t *CombiningTree) Handle(id int) *CombiningHandle {
	if id < 0 || id >= t.width {
		panic(fmt.Sprintf("contend: CombiningTree handle id %d out of range [0,%d)", id, t.width))
	}
	leaf := t.leaves[(id/2)%len(t.leaves)]
	return &CombiningHandle{
		tree: t,
		leaf: leaf,
		path: make([]*combiningNode, 0, len(t.nodes)),
	}
}

// Load returns the current value: the total accumulated at the root. Exact
// in quiescent states; concurrent in-flight batches may be missing.
func (t *CombiningTree) Load() int64 {
	root := t.nodes[0]
	root.mu.Lock()
	defer root.mu.Unlock()
	return root.result
}

// CombiningHandle is a per-thread-slot accessor to the tree.
type CombiningHandle struct {
	tree *CombiningTree
	leaf *combiningNode
	path []*combiningNode
}

// Add adds delta, combining with concurrent operations that meet it on the
// way to the root. It returns when the delta is reflected at the root.
func (h *CombiningHandle) Add(delta int64) {
	h.FetchAdd(delta)
}

// FetchAdd adds delta and returns the counter value immediately before this
// operation's combined batch was applied (the classic fetch-and-add result
// for this thread's position within the batch).
func (h *CombiningHandle) FetchAdd(delta int64) int64 {
	// Phase 1 — precombine: climb while we are the first to arrive,
	// locking in a combining rendezvous where we are second.
	node := h.leaf
	for node.precombine() {
		node = node.parent
	}
	stop := node

	// Phase 2 — combine: gather values on the path below stop.
	h.path = h.path[:0]
	combined := delta
	for node = h.leaf; node != stop; node = node.parent {
		combined = node.combine(combined)
		h.path = append(h.path, node)
	}

	// Phase 3 — operate at the stop node (root applies; interior SECOND
	// node deposits and waits for the distributed result).
	prior := stop.op(combined)

	// Phase 4 — distribute results back down the captured path.
	for i := len(h.path) - 1; i >= 0; i-- {
		h.path[i].distribute(prior)
	}
	return prior
}

// precombine reports whether the caller should continue climbing: true when
// it was first to arrive (status IDLE→FIRST), false when it met a waiting
// first thread (FIRST→SECOND) or reached the root.
func (n *combiningNode) precombine() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.locked {
		n.cond.Wait()
	}
	switch n.status {
	case combiningIdle:
		n.status = combiningFirst
		return true
	case combiningFirst:
		n.locked = true
		n.status = combiningSecond
		return false
	case combiningRoot:
		return false
	default:
		panic(fmt.Sprintf("contend: combining precombine in unexpected status %d", n.status))
	}
}

// combine folds any second-thread value deposited at n into combined and
// locks the node until distribution.
func (n *combiningNode) combine(combined int64) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.locked {
		n.cond.Wait()
	}
	n.locked = true
	n.firstVal = combined
	switch n.status {
	case combiningFirst:
		return n.firstVal
	case combiningSecond:
		return n.firstVal + n.secondVal
	default:
		panic(fmt.Sprintf("contend: combining combine in unexpected status %d", n.status))
	}
}

// op applies the combined batch at the stop node. At the root it updates the
// grand total; at a SECOND rendezvous it deposits the value for the first
// thread and waits for the result.
func (n *combiningNode) op(combined int64) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.status {
	case combiningRoot:
		prior := n.result
		n.result += combined
		return prior
	case combiningSecond:
		n.secondVal = combined
		n.locked = false
		n.cond.Broadcast() // wake the first thread to combine us upward
		for n.status != combiningResult {
			n.cond.Wait()
		}
		n.locked = false
		n.status = combiningIdle
		n.cond.Broadcast()
		return n.result
	default:
		panic(fmt.Sprintf("contend: combining op in unexpected status %d", n.status))
	}
}

// distribute propagates the batch's prior value down after the stop node
// applied it, releasing waiting second threads.
func (n *combiningNode) distribute(prior int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.status {
	case combiningFirst:
		// Nobody met us here: reset and release the node.
		n.status = combiningIdle
		n.locked = false
	case combiningSecond:
		// Hand the second thread its slice of the batch: it comes after
		// our firstVal within the combined update.
		n.result = prior + n.firstVal
		n.status = combiningResult
	default:
		panic(fmt.Sprintf("contend: combining distribute in unexpected status %d", n.status))
	}
	n.cond.Broadcast()
}
