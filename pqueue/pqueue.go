package pqueue

import (
	"sync"

	cds "github.com/cds-suite/cds"
)

// Compile-time interface compliance checks.
var (
	_ cds.PriorityQueue[int] = (*Heap[int])(nil)
	_ cds.PriorityQueue[int] = (*SkipList[int])(nil)
)

// Heap is a coarse-locked binary min-heap. less defines the priority
// order: less(a, b) means a has higher priority (comes out first).
//
// Progress: blocking.
type Heap[T any] struct {
	mu    sync.Mutex
	less  func(a, b T) bool
	items []T
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Insert adds v.
func (h *Heap[T]) Insert(v T) {
	h.mu.Lock()
	h.items = append(h.items, v)
	siftUp(h.items, len(h.items)-1, h.less)
	h.mu.Unlock()
}

// TryDeleteMin removes and returns the minimum element; ok is false if the
// heap was empty.
func (h *Heap[T]) TryDeleteMin() (v T, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.items)
	if n == 0 {
		return v, false
	}
	v = h.items[0]
	h.items[0] = h.items[n-1]
	var zero T
	h.items[n-1] = zero
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		siftDown(h.items, 0, h.less)
	}
	return v, true
}

// Len reports the number of elements.
func (h *Heap[T]) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.items)
}

// siftUp restores the heap property from index i toward the root. It is
// shared by the locked Heap and the flat-combining FC heap; callers hold
// whatever exclusion their structure requires.
func siftUp[T any](items []T, i int, less func(a, b T) bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(items[i], items[parent]) {
			return
		}
		items[i], items[parent] = items[parent], items[i]
		i = parent
	}
}

// siftDown restores the heap property from index i toward the leaves.
func siftDown[T any](items []T, i int, less func(a, b T) bool) {
	n := len(items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && less(items[left], items[smallest]) {
			smallest = left
		}
		if right < n && less(items[right], items[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		items[i], items[smallest] = items[smallest], items[i]
		i = smallest
	}
}
