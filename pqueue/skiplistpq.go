package pqueue

import (
	"cmp"
	"sync"
	"sync/atomic"

	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/internal/xrand"
)

// pqMaxLevel bounds tower height for the priority-queue skip list.
const pqMaxLevel = 32

// SkipList is a lock-free priority queue in the style of Lotan & Shavit
// ("Skiplist-Based Concurrent Priority Queues", IPDPS 2000), built on a
// Herlihy–Shavit lock-free skip list. Inserts place items by (priority,
// sequence) — the sequence number makes every key unique, so duplicate
// priorities are legal and FIFO among themselves. TryDeleteMin walks the
// bottom level from the head and races to claim the first unclaimed node by
// marking it; contenders that lose move on to the next node, so concurrent
// DeleteMins spread across the minimal run instead of all fighting for one
// CAS.
//
// Weakened semantics (as in the literature): TryDeleteMin is linearizable
// with respect to Insert, but two concurrent TryDeleteMins may return
// values out of priority order with respect to each other — the classic
// relaxation that buys scalability.
//
// Progress: lock-free.
type SkipList[P cmp.Ordered] struct {
	head   *pqNode[P]
	seq    atomic.Uint64
	size   atomic.Int64
	levels sync.Pool
}

type pqNode[P cmp.Ordered] struct {
	prio     P
	seq      uint64 // tiebreaker: unique per node, FIFO among equal prio
	isHead   bool
	topLevel int
	next     [pqMaxLevel]atomic.Pointer[pqRef[P]]
}

// pqRef is an immutable (successor, mark) pair for one level.
type pqRef[P cmp.Ordered] struct {
	next   *pqNode[P]
	marked bool
}

// before reports whether node a orders strictly before key (prio, seq).
func (n *pqNode[P]) before(prio P, seq uint64) bool {
	if n.prio != prio {
		return n.prio < prio
	}
	return n.seq < seq
}

// NewSkipList returns an empty lock-free skip-list priority queue.
func NewSkipList[P cmp.Ordered]() *SkipList[P] {
	h := &pqNode[P]{isHead: true, topLevel: pqMaxLevel - 1}
	for i := 0; i < pqMaxLevel; i++ {
		h.next[i].Store(&pqRef[P]{})
	}
	s := &SkipList[P]{head: h}
	var seed atomic.Uint64
	s.levels.New = func() any {
		return xrand.New(seed.Add(0x9e3779b97f4a7c15))
	}
	return s
}

func (s *SkipList[P]) randomLevel() int {
	rng := s.levels.Get().(*xrand.Rand)
	v := rng.Uint64()
	s.levels.Put(rng)
	h := 1
	for v&1 == 1 && h < pqMaxLevel {
		h++
		v >>= 1
	}
	return h - 1 // topLevel index
}

// find locates per-level windows for key (prio, seq), snipping marked nodes
// (helping). Mirrors skiplist.LockFree.find, including the marked-pred
// restart that keeps half-removed nodes from being resurrected.
func (s *SkipList[P]) find(prio P, seq uint64, preds *[pqMaxLevel]*pqNode[P], predRefs *[pqMaxLevel]*pqRef[P], succs *[pqMaxLevel]*pqNode[P]) {
retry:
	for {
		pred := s.head
		for level := pqMaxLevel - 1; level >= 0; level-- {
			predRef := pred.next[level].Load()
			if predRef.marked {
				continue retry
			}
			curr := predRef.next
			for curr != nil {
				currRef := curr.next[level].Load()
				if currRef.marked {
					newRef := &pqRef[P]{next: currRef.next}
					if !pred.next[level].CompareAndSwap(predRef, newRef) {
						continue retry
					}
					predRef = newRef
					curr = newRef.next
					continue
				}
				if curr.before(prio, seq) {
					pred, predRef, curr = curr, currRef, currRef.next
					continue
				}
				break
			}
			preds[level] = pred
			predRefs[level] = predRef
			succs[level] = curr
		}
		return
	}
}

// Insert adds v. Duplicate priorities are fine; among equals, earlier
// inserts are dequeued first.
func (s *SkipList[P]) Insert(v P) {
	seq := s.seq.Add(1)
	topLevel := s.randomLevel()
	var b contend.Backoff
	var preds, succs [pqMaxLevel]*pqNode[P]
	var predRefs [pqMaxLevel]*pqRef[P]
	for {
		s.find(v, seq, &preds, &predRefs, &succs)
		n := &pqNode[P]{prio: v, seq: seq, topLevel: topLevel}
		for level := 0; level <= topLevel; level++ {
			n.next[level].Store(&pqRef[P]{next: succs[level]})
		}
		if !preds[0].next[0].CompareAndSwap(predRefs[0], &pqRef[P]{next: n}) {
			b.Pause() // lost the window; back off before re-resolving it
			continue
		}
		s.size.Add(1)

		for level := 1; level <= topLevel; level++ {
			for {
				nRef := n.next[level].Load()
				if nRef.marked {
					return // already being deleted; stop linking
				}
				succ := succs[level]
				if nRef.next != succ {
					if !n.next[level].CompareAndSwap(nRef, &pqRef[P]{next: succ}) {
						continue
					}
				}
				if preds[level].next[level].CompareAndSwap(predRefs[level], &pqRef[P]{next: n}) {
					break
				}
				b.Pause() // lost the window; back off before re-resolving it
				s.find(v, seq, &preds, &predRefs, &succs)
				if succs[0] != n {
					return // unlinked meanwhile; stop
				}
			}
		}
		return
	}
}

// TryDeleteMin removes and returns a minimal element; ok is false if the
// queue was observed empty. See the type comment for the relaxed ordering
// between concurrent calls.
func (s *SkipList[P]) TryDeleteMin() (v P, ok bool) {
	var b contend.Backoff
	for {
		curr := s.head.next[0].Load().next
		for curr != nil {
			ref := curr.next[0].Load()
			if ref.marked {
				curr = ref.next // already claimed; try the next node
				continue
			}
			// Claim curr by marking its bottom level.
			if curr.next[0].CompareAndSwap(ref, &pqRef[P]{next: ref.next, marked: true}) {
				s.size.Add(-1)
				// Mark the upper levels and physically clean up.
				for level := curr.topLevel; level >= 1; level-- {
					r := curr.next[level].Load()
					for !r.marked {
						curr.next[level].CompareAndSwap(r, &pqRef[P]{next: r.next, marked: true})
						r = curr.next[level].Load()
					}
				}
				var preds [pqMaxLevel]*pqNode[P]
				var predRefs [pqMaxLevel]*pqRef[P]
				var succs [pqMaxLevel]*pqNode[P]
				s.find(curr.prio, curr.seq, &preds, &predRefs, &succs)
				return curr.prio, true
			}
			// Lost the claim race (or curr's successor changed): back off,
			// then reload curr's record.
			b.Pause()
		}
		if curr == nil {
			return v, false
		}
	}
}

// Len reports the number of elements (atomic counter; exact in quiescent
// states).
func (s *SkipList[P]) Len() int {
	return int(s.size.Load())
}
