// Package pqueue implements concurrent priority queues: a mutex-guarded
// binary heap baseline, the lock-free skip-list-based priority queue in
// the style of Lotan & Shavit, and a flat-combining heap built on the
// shared combining core in package contend.
//
// Priority queues stress a structural hot spot no hash or balance trick can
// remove: every DeleteMin fights over the minimum. The heap serialises
// completely (every operation locks the root); the skip-list design spreads
// inserts across the ordering and lets DeleteMin contenders claim distinct
// minimal nodes by racing logical-deletion marks down the bottom level.
// Experiment F8 regenerates the comparison, and the S13 contention cells
// show where combining overtakes both.
//
// Progress guarantees: Heap is blocking; SkipList is lock-free (insert and
// the delete-min mark race are CAS loops with helping via the underlying
// list); FC is blocking in the combining sense — one combiner applies a
// batch against the sequential heap with warm caches, which is exactly
// the right trade for a structure whose operations serialise anyway. All
// are linearizable against the multiset model in package lincheck.
package pqueue
