package pqueue

import (
	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/contend"
)

var _ cds.PriorityQueue[int] = (*FC[int])(nil)

// FC is a combining priority queue: a plain sequential binary heap made
// concurrent through a contend.Delegator backend (flat combining by
// default; CC-Synch or DSM-Synch via WithBackend). A priority queue is
// combining's natural habitat — every DeleteMin serialises on the minimum
// anyway, so instead of p threads taking turns pulling the heap's cache
// lines through a lock, one combiner applies a whole batch of inserts and
// deleteMins against a heap that stays resident in its cache. The Synch
// framework (Kallimanis) reports exactly this shape winning for heaps at
// scale, with the CC-Synch backends ahead at high core counts.
//
// less defines the priority order: less(a, b) means a comes out first.
//
// Progress: blocking in the small (a stalled combiner delays its batch) but
// the combiner role is held only for a bounded batch.
type FC[T any] struct {
	c contend.Delegator[*seqHeap[T]]
}

type seqHeap[T any] struct {
	less  func(a, b T) bool
	items []T
}

// Option configures the combining priority queue at construction.
type Option func(*fcConfig)

type fcConfig struct {
	backend contend.Backend
}

// WithBackend selects the combining backend (flat combining default,
// CC-Synch, DSM-Synch); see contend.Backend.
func WithBackend(b contend.Backend) Option {
	return func(c *fcConfig) { c.backend = b }
}

// NewFC returns an empty combining priority queue ordered by less.
func NewFC[T any](less func(a, b T) bool, opts ...Option) *FC[T] {
	var cfg fcConfig
	for _, o := range opts {
		o(&cfg)
	}
	return &FC[T]{c: contend.NewDelegator(cfg.backend, &seqHeap[T]{less: less})}
}

// Stats reports the combining-backend gauges (batches, ops, handoffs).
func (q *FC[T]) Stats() contend.DelegatorStats { return q.c.Stats() }

// Insert adds v.
func (q *FC[T]) Insert(v T) {
	q.c.Do(func(h *seqHeap[T]) {
		h.items = append(h.items, v)
		siftUp(h.items, len(h.items)-1, h.less)
	})
}

// TryDeleteMin removes and returns the minimum element; ok is false if the
// queue was empty.
func (q *FC[T]) TryDeleteMin() (v T, ok bool) {
	q.c.Do(func(h *seqHeap[T]) {
		n := len(h.items)
		if n == 0 {
			return
		}
		v, ok = h.items[0], true
		h.items[0] = h.items[n-1]
		var zero T
		h.items[n-1] = zero
		h.items = h.items[:n-1]
		if len(h.items) > 0 {
			siftDown(h.items, 0, h.less)
		}
	})
	return v, ok
}

// Len reports the number of elements.
func (q *FC[T]) Len() int {
	var n int
	q.c.Do(func(h *seqHeap[T]) { n = len(h.items) })
	return n
}
