package pqueue

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	cds "github.com/cds-suite/cds"
	"github.com/cds-suite/cds/contend"
	"github.com/cds-suite/cds/internal/xrand"
)

func implementations() []struct {
	name string
	mk   func() cds.PriorityQueue[int]
} {
	return []struct {
		name string
		mk   func() cds.PriorityQueue[int]
	}{
		{name: "Heap", mk: func() cds.PriorityQueue[int] {
			return NewHeap[int](func(a, b int) bool { return a < b })
		}},
		{name: "SkipList", mk: func() cds.PriorityQueue[int] { return NewSkipList[int]() }},
		{name: "FCHeap", mk: func() cds.PriorityQueue[int] {
			return NewFC[int](func(a, b int) bool { return a < b })
		}},
		{name: "FCHeap/CC-Synch", mk: func() cds.PriorityQueue[int] {
			return NewFC[int](func(a, b int) bool { return a < b }, WithBackend(contend.BackendCCSynch))
		}},
		{name: "FCHeap/DSM-Synch", mk: func() cds.PriorityQueue[int] {
			return NewFC[int](func(a, b int) bool { return a < b }, WithBackend(contend.BackendDSMSynch))
		}},
	}
}

func TestSequentialOrder(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			q := tt.mk()
			if _, ok := q.TryDeleteMin(); ok {
				t.Fatal("TryDeleteMin on empty queue reported ok")
			}
			input := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
			for _, v := range input {
				q.Insert(v)
			}
			if got := q.Len(); got != len(input) {
				t.Fatalf("Len = %d, want %d", got, len(input))
			}
			for want := 0; want < 10; want++ {
				v, ok := q.TryDeleteMin()
				if !ok || v != want {
					t.Fatalf("TryDeleteMin = (%d, %v), want (%d, true)", v, ok, want)
				}
			}
			if _, ok := q.TryDeleteMin(); ok {
				t.Fatal("drained queue returned a value")
			}
		})
	}
}

func TestDuplicatePriorities(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			q := tt.mk()
			for i := 0; i < 5; i++ {
				q.Insert(7)
				q.Insert(3)
			}
			got := make([]int, 0, 10)
			for {
				v, ok := q.TryDeleteMin()
				if !ok {
					break
				}
				got = append(got, v)
			}
			want := []int{3, 3, 3, 3, 3, 7, 7, 7, 7, 7}
			if len(got) != len(want) {
				t.Fatalf("drained %d values, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("order = %v, want %v", got, want)
				}
			}
		})
	}
}

func TestPropertyHeapsort(t *testing.T) {
	// Inserting any multiset then draining must equal sorting it.
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			f := func(vals []int16) bool {
				q := tt.mk()
				for _, v := range vals {
					q.Insert(int(v))
				}
				drained := make([]int, 0, len(vals))
				for {
					v, ok := q.TryDeleteMin()
					if !ok {
						break
					}
					drained = append(drained, v)
				}
				if len(drained) != len(vals) {
					return false
				}
				want := make([]int, len(vals))
				for i, v := range vals {
					want[i] = int(v)
				}
				sort.Ints(want)
				for i := range want {
					if drained[i] != want[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentConservation: everything inserted comes out exactly once.
func TestConcurrentConservation(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			q := tt.mk()
			producers := runtime.GOMAXPROCS(0)
			consumers := runtime.GOMAXPROCS(0)
			const perProducer = 10000
			total := producers * perProducer

			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					rng := xrand.New(uint64(p) + 5)
					for i := 0; i < perProducer; i++ {
						q.Insert(p*perProducer + rng.Intn(perProducer)) // values may repeat
					}
				}(p)
			}

			var consumed atomicCounter
			var cwg sync.WaitGroup
			for c := 0; c < consumers; c++ {
				cwg.Add(1)
				go func() {
					defer cwg.Done()
					for consumed.load() < int64(total) {
						if _, ok := q.TryDeleteMin(); ok {
							consumed.add(1)
						}
					}
				}()
			}
			wg.Wait()
			cwg.Wait()
			if got := consumed.load(); got != int64(total) {
				t.Fatalf("consumed %d, want %d", got, total)
			}
			if _, ok := q.TryDeleteMin(); ok {
				t.Fatal("queue should be empty")
			}
			if got := q.Len(); got != 0 {
				t.Fatalf("Len = %d, want 0", got)
			}
		})
	}
}

// TestConcurrentMonotonicPerConsumer: each consumer's own sequence of
// minima must be non-decreasing in a phase where no inserts run (sequential
// consistency per thread even under the relaxed cross-thread ordering of
// the skip-list PQ).
func TestDrainMonotonicPerConsumer(t *testing.T) {
	for _, tt := range implementations() {
		t.Run(tt.name, func(t *testing.T) {
			q := tt.mk()
			const total = 100000
			rng := xrand.New(77)
			for i := 0; i < total; i++ {
				q.Insert(rng.Intn(1 << 20))
			}
			consumers := runtime.GOMAXPROCS(0)
			var wg sync.WaitGroup
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					last := -1
					for {
						v, ok := q.TryDeleteMin()
						if !ok {
							return
						}
						if v < last {
							t.Errorf("consumer %d: got %d after %d", c, v, last)
							return
						}
						last = v
					}
				}(c)
			}
			wg.Wait()
		})
	}
}

func TestHeapCustomOrder(t *testing.T) {
	// Max-heap via inverted less.
	q := NewHeap[int](func(a, b int) bool { return a > b })
	for _, v := range []int{3, 1, 4, 1, 5} {
		q.Insert(v)
	}
	want := []int{5, 4, 3, 1, 1}
	for _, w := range want {
		v, ok := q.TryDeleteMin()
		if !ok || v != w {
			t.Fatalf("got (%d,%v), want (%d,true)", v, ok, w)
		}
	}
}

func TestSkipListFIFOAmongEqualPriorities(t *testing.T) {
	// With a single priority, the sequence tiebreaker makes it a FIFO.
	q := NewSkipList[int]()
	for i := 0; i < 100; i++ {
		q.Insert(42)
	}
	for i := 0; i < 100; i++ {
		if v, ok := q.TryDeleteMin(); !ok || v != 42 {
			t.Fatalf("TryDeleteMin = (%d, %v)", v, ok)
		}
	}
}

type atomicCounter struct {
	n atomic.Int64
}

func (c *atomicCounter) add(d int64) { c.n.Add(d) }
func (c *atomicCounter) load() int64 { return c.n.Load() }
