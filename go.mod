module github.com/cds-suite/cds

go 1.24
